//! The serving pipeline: readiness loop → queue → adaptive batcher →
//! workers → drain.
//!
//! - **Transport.** On unix the TCP transport is a single-threaded,
//!   readiness-driven event loop (epoll on Linux, `poll()` elsewhere —
//!   see [`crate::poll`]) owning the listener and every client socket.
//!   Connections are nonblocking; requests are framed zero-copy out of
//!   per-connection read buffers ([`crate::conn`]) and multiplexed by
//!   client-chosen request ids — many requests can be in flight per
//!   connection, answered in completion order. Workers write responses
//!   directly to the socket when it has room; only backpressured bytes
//!   detour through the loop.
//! - **Admission.** Parsed evaluation jobs land on a bounded queue. A
//!   full queue rejects immediately with a `retry_after_ms` hint derived
//!   from the *observed* per-job drain rate (EWMA, 1 ms floor) —
//!   explicit backpressure instead of unbounded buffering. `stats` and
//!   `metrics` and `shutdown` bypass the queue so observability
//!   survives saturation.
//! - **Adaptive batching.** Worker threads pull from the queue with no
//!   fixed window: an idle worker dispatches the moment a job arrives
//!   (micro-batch of one), and while every worker is busy the queue
//!   accumulates so the next free worker drains up to `batch_max` jobs
//!   in one lock acquisition. Coalescing happens exactly when the pool
//!   is saturated and never costs latency when it is not. (The old
//!   fixed 2 ms window put a ~250x sleep tax on 9 µs evaluations;
//!   `batch_window` survives only as an artificial pre-drain delay for
//!   saturation tests, default zero.)
//! - **Containment.** Each job evaluates under per-job panic/error
//!   containment; a panicking or infeasible scenario fails its own
//!   request only. Per-request deadlines are checked at evaluation
//!   start inside the same boundary.
//! - **Drain.** `shutdown` (or stdin EOF in `--stdio` mode) stops
//!   admission; workers finish everything already queued and the event
//!   loop flushes every pending response before the server returns —
//!   no accepted request is silently dropped.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::access_log::{self, AccessLog};
use crate::json::{obj, Json};
use crate::protocol::{self, RefineMode, RefineSpec, Request, TriageSpec};
use xlda_core::evaluate::{Evaluation, Scenario};
use xlda_core::store::{successive_halving, HalvingConfig, ResultStore};
use xlda_core::sweep::{memo, SweepOptions};
use xlda_core::triage::{rank, Objective};
use xlda_core::XldaError;
use xlda_obs::flight::{self, FlightRecorder, RequestTrace};
use xlda_obs::{clock, Counter, Exemplars, Histogram, Registry};

/// Hard cap on bytes a single request frame may occupy before a
/// newline shows up; beyond this the connection is closed with
/// `frame_too_large`.
pub const MAX_FRAME_DEFAULT: usize = 1 << 20;

/// Tuning knobs for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Admission queue capacity; beyond this, requests are rejected
    /// with `retry_after_ms`.
    pub queue_cap: usize,
    /// Artificial delay between a worker waking and draining its batch.
    /// The adaptive batcher needs no window — this exists so saturation
    /// tests can stall draining deterministically. Default zero.
    pub batch_window: Duration,
    /// Maximum jobs drained into one worker batch.
    pub batch_max: usize,
    /// Evaluation worker threads (0 = available parallelism).
    pub threads: usize,
    /// Default per-request deadline applied when a request carries
    /// none. `None` means requests without a deadline never expire.
    pub default_deadline: Option<Duration>,
    /// Largest request frame accepted before the connection is closed
    /// with `frame_too_large`.
    pub max_frame: usize,
    /// Whether the per-request flight recorder runs (default on; its
    /// hot-path cost is a handful of atomic stores per request, gated
    /// under 5% wall overhead by `xlda-bench --flight-overhead`).
    pub flight: bool,
    /// Retained-trace ring capacity for the flight recorder.
    pub flight_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            queue_cap: 256,
            batch_window: Duration::ZERO,
            batch_max: 64,
            threads: 0,
            default_deadline: None,
            max_frame: MAX_FRAME_DEFAULT,
            flight: true,
            flight_cap: 64,
        }
    }
}

/// A line-oriented response destination. Implementations must tolerate
/// being called from worker threads and must never block on a slow
/// peer (buffer or drop instead).
pub trait ResponseSink: Send + Sync {
    /// Emits exactly one response line (no trailing newline in `line`).
    fn send(&self, line: &str);
    /// Accounting hook: a queue job now owes this sink a response.
    fn job_started(&self) {}
    /// Accounting hook: the owed response has been sent (or discarded).
    fn job_finished(&self) {}
}

/// What one admitted job does when a worker picks it up.
enum Work {
    /// A single-scenario evaluation (the classic request kinds).
    Eval {
        scenario: Box<dyn Scenario>,
        triage: Option<TriageSpec>,
    },
    /// An incremental-DSE grid against the result store.
    Refine(RefineSpec),
}

/// One admitted job.
struct Job {
    id: String,
    work: Work,
    deadline_at: Option<Instant>,
    enqueued_at: Instant,
    sink: Arc<dyn ResponseSink>,
    /// Flight-recorder handle, present when the recorder or the access
    /// log is enabled. `Arc` because the event loop and a worker can
    /// both hold it across the queue handoff.
    trace: Option<Arc<RequestTrace>>,
}

/// Why a job failed.
enum JobError {
    Eval(XldaError),
    Panicked(String),
}

/// Lock-free per-instance instruments behind the `stats` and `metrics`
/// endpoints (an obs [`Registry`], so every value is also renderable as
/// Prometheus text). Per server instance, not process-global: tests and
/// embedders can run several servers without cross-talk.
struct Metrics {
    registry: Registry,
    /// Enqueue-to-response latency of completed requests, seconds.
    latency: Arc<Histogram>,
    /// Enqueue-to-evaluation-start wait, seconds (queueing + batching).
    queue_wait: Arc<Histogram>,
    /// Pure evaluation time per request, seconds.
    compute: Arc<Histogram>,
    completed: Arc<Counter>,
    rejected: Arc<Counter>,
    deadline_expired: Arc<Counter>,
    points: Arc<Counter>,
    /// Monte-Carlo trials summarized across all served `*_mc` requests.
    mc_trials: Arc<Counter>,
    connections_opened: Arc<Counter>,
    connections_closed: Arc<Counter>,
    /// EWMA of worker nanoseconds per drained job; 0 until the first
    /// batch completes. Feeds the `retry_after_ms` backpressure hint.
    drain_ns_per_job: AtomicU64,
    /// Per-scenario-kind latency histograms. The kind set is tiny and
    /// static (~10 `&'static str`s), so a linear scan under a mutex is
    /// cheaper than hashing; the handles are `Arc`s so the scan only
    /// covers the lookup, not the record.
    by_kind: Mutex<Vec<(&'static str, Arc<Histogram>)>>,
    /// Request-id exemplars for the latency histogram: the slowest
    /// observation per bucket since the last `metrics` scrape.
    latency_exemplars: Exemplars,
    started: Instant,
}

impl Metrics {
    fn new() -> Self {
        let registry = Registry::new();
        Self {
            latency: registry.histogram("xlda_serve_request_latency_seconds"),
            queue_wait: registry.histogram("xlda_serve_queue_wait_seconds"),
            compute: registry.histogram("xlda_serve_compute_seconds"),
            completed: registry.counter("xlda_serve_completed_total"),
            rejected: registry.counter("xlda_serve_rejected_total"),
            deadline_expired: registry.counter("xlda_serve_deadline_expired_total"),
            points: registry.counter("xlda_serve_points_total"),
            mc_trials: registry.counter("xlda_serve_mc_trials_total"),
            connections_opened: registry.counter("xlda_serve_connections_opened_total"),
            connections_closed: registry.counter("xlda_serve_connections_closed_total"),
            drain_ns_per_job: AtomicU64::new(0),
            by_kind: Mutex::new(Vec::new()),
            latency_exemplars: Exemplars::new(),
            started: Instant::now(),
            registry,
        }
    }

    /// Records one completed request's latency: the overall histogram,
    /// its per-kind histogram, and the request-id exemplar store.
    fn observe_request(&self, kind: &'static str, id: &str, latency: Duration) {
        let s = latency.as_secs_f64();
        self.latency.record(s);
        self.latency_exemplars.observe(s, id);
        let h = {
            let mut list = self.by_kind.lock().unwrap_or_else(|e| e.into_inner());
            match list.iter().find(|(k, _)| *k == kind) {
                Some((_, h)) => Arc::clone(h),
                None => {
                    let h = Arc::new(Histogram::new());
                    list.push((kind, Arc::clone(&h)));
                    h
                }
            }
        };
        h.record(s);
    }

    /// Per-kind latency snapshots, sorted by kind name.
    fn kind_snapshot(&self) -> Vec<(&'static str, xlda_obs::HistogramSnapshot)> {
        let list = self.by_kind.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<_> = list.iter().map(|(k, h)| (*k, h.snapshot())).collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// A histogram quantile in milliseconds, 0.0 when empty (matching
    /// the pre-obs stats shape).
    fn quantile_ms(h: &Histogram, p: f64) -> f64 {
        let snap = h.snapshot();
        if snap.is_empty() {
            0.0
        } else {
            snap.quantile(p) * 1e3
        }
    }

    /// Folds one drained batch into the drain-rate EWMA (α = 1/4).
    fn observe_drain(&self, elapsed: Duration, jobs: usize) {
        if jobs == 0 {
            return;
        }
        let sample = (elapsed.as_nanos() / jobs as u128).clamp(1, u64::MAX as u128) as u64;
        let cur = self.drain_ns_per_job.load(Ordering::Relaxed);
        let next = if cur == 0 {
            sample
        } else {
            cur - cur / 4 + sample / 4
        };
        self.drain_ns_per_job.store(next, Ordering::Relaxed);
    }

    fn open_connections(&self) -> u64 {
        self.connections_opened
            .get()
            .saturating_sub(self.connections_closed.get())
    }
}

pub(crate) struct Shared {
    config: ServerConfig,
    /// Worker count after resolving `threads == 0`.
    workers: usize,
    queue: Mutex<VecDeque<Job>>,
    not_empty: Condvar,
    draining: AtomicBool,
    metrics: Metrics,
    /// The persistent result store, when one is configured. `Eval` jobs
    /// consult it transparently (digest hit skips the engine); `Refine`
    /// jobs resolve against it, falling back to a transient in-memory
    /// store when absent.
    store: Option<Arc<ResultStore>>,
    /// Tail-sampling trace retention, when `config.flight` is on.
    flight: Option<Arc<FlightRecorder>>,
    /// Wide-event NDJSON access log, when one is configured.
    access_log: Option<AccessLog>,
    /// Installed by the event loop so `shutdown()` and workers can wake
    /// it; `None` under stdio/threaded transports.
    #[cfg(unix)]
    waker: Mutex<Option<crate::conn::Waker>>,
}

impl Shared {
    #[cfg(unix)]
    fn wake_loop(&self) {
        if let Some(w) = &*self.waker.lock().unwrap_or_else(|e| e.into_inner()) {
            w.wake();
        }
    }

    #[cfg(not(unix))]
    fn wake_loop(&self) {}
}

/// A line-oriented output sink shared between the admitting reader
/// (rejections, stats) and the workers (evaluation responses); used by
/// the stdio transport and tests.
#[derive(Clone)]
pub struct SharedWriter(Arc<Mutex<Box<dyn Write + Send>>>);

impl SharedWriter {
    /// Wraps a sink. Each `send` appends exactly one line and flushes.
    pub fn new(w: Box<dyn Write + Send>) -> Self {
        Self(Arc::new(Mutex::new(w)))
    }
}

impl ResponseSink for SharedWriter {
    fn send(&self, line: &str) {
        let mut w = self.0.lock().unwrap_or_else(|e| e.into_inner());
        // A dead peer is not a server error; drop the response.
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }
}

/// The evaluation service. Construct once, then run in stdio or TCP
/// mode; both share the same pipeline and warm caches.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Starts the worker pool; the server is ready to admit requests.
    pub fn new(config: ServerConfig) -> Self {
        Self::with_store(config, None)
    }

    /// Like [`Server::new`], with a persistent result store consulted
    /// before every evaluation and backing `refine` requests. The store
    /// is also attached process-globally so its counters ride along in
    /// the memo-cache snapshot.
    pub fn with_store(config: ServerConfig, store: Option<Arc<ResultStore>>) -> Self {
        Self::with_parts(config, store, None)
    }

    /// The full constructor: optional result store plus an optional
    /// wide-event access log every request is written to.
    pub fn with_parts(
        config: ServerConfig,
        store: Option<Arc<ResultStore>>,
        access_log: Option<AccessLog>,
    ) -> Self {
        if let Some(s) = &store {
            xlda_core::store::attach(Arc::clone(s));
        }
        let worker_count = if config.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.threads
        };
        let recorder = config
            .flight
            .then(|| Arc::new(FlightRecorder::new(config.flight_cap)));
        let shared = Arc::new(Shared {
            config,
            workers: worker_count,
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            draining: AtomicBool::new(false),
            metrics: Metrics::new(),
            store,
            flight: recorder,
            access_log,
            #[cfg(unix)]
            waker: Mutex::new(None),
        });
        let workers = (0..worker_count)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self { shared, workers }
    }

    /// Whether a drain has been requested.
    pub fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Requests a graceful drain: admission stops, queued work
    /// completes, run loops return.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.not_empty.notify_all();
        self.shared.wake_loop();
    }

    /// Serves one request line against the given response writer.
    /// Exposed so both transports (and tests) share one code path.
    pub fn handle_line(&self, line: &str, writer: &SharedWriter) {
        let sink: Arc<dyn ResponseSink> = Arc::new(writer.clone());
        handle_line_from(&self.shared, line, &sink, false);
    }

    /// Runs the stdio transport: one request per stdin line, one
    /// response per stdout line. Returns after EOF or `shutdown`,
    /// once all admitted work has completed.
    pub fn run_stdio(mut self) {
        let writer = SharedWriter::new(Box::new(std::io::stdout()));
        let sink: Arc<dyn ResponseSink> = Arc::new(writer);
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            handle_line_from(&self.shared, &line, &sink, false);
            if self.draining() {
                break;
            }
        }
        self.shutdown();
        self.join();
    }

    /// Runs the TCP transport until a `shutdown` request drains the
    /// server. On unix this is the readiness-driven event loop; on
    /// other targets it falls back to a thread per connection.
    pub fn run_tcp(mut self, listener: TcpListener) -> std::io::Result<()> {
        #[cfg(unix)]
        let result = crate::event_loop::run(&self.shared, listener);
        #[cfg(not(unix))]
        let result = run_tcp_threaded_inner(&self.shared, listener);
        self.join();
        result
    }

    /// Runs the legacy thread-per-connection TCP transport. Kept as the
    /// A/B baseline for the event loop (responses must be bit-exact
    /// across both) and as the non-unix fallback.
    pub fn run_tcp_threaded(mut self, listener: TcpListener) -> std::io::Result<()> {
        let result = run_tcp_threaded_inner(&self.shared, listener);
        self.join();
        result
    }

    /// Waits for the workers to finish draining the queue.
    fn join(&mut self) {
        self.shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.join();
    }
}

/// Whether an `accept(2)` failure is transient. Aborted/reset covers a
/// peer that connected and vanished before the accept; EMFILE/ENFILE
/// (24/23) and ENOMEM (12) are resource exhaustion that draining
/// existing connections can resolve — none of them justify tearing the
/// server down.
pub(crate) fn accept_retryable(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::OutOfMemory
    ) || matches!(e.raw_os_error(), Some(23) | Some(24) | Some(12))
}

fn run_tcp_threaded_inner(shared: &Arc<Shared>, listener: TcpListener) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    while !shared.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                shared.metrics.connections_opened.inc();
                std::thread::spawn(move || {
                    connection_loop(&shared, stream);
                    shared.metrics.connections_closed.inc();
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Poll for drain at 1 ms; the event loop (the default
                // transport on unix) has no such tax — its listener is
                // readiness-driven.
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) if accept_retryable(&e) => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn connection_loop(shared: &Arc<Shared>, stream: TcpStream) {
    // Line-at-a-time request/response traffic is exactly the pattern
    // Nagle + delayed ACK turns into ~40 ms stalls; disable batching.
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let sink: Arc<dyn ResponseSink> = Arc::new(SharedWriter::new(Box::new(write_half)));
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        handle_line_from(shared, &line, &sink, false);
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
    }
}

/// Largest observed per-job cost at which the event loop evaluates a
/// request on its own thread instead of handing it to the pool. Warm
/// cache-hit evaluations run ~10 µs; a cross-thread handoff on a small
/// box costs more than that in context switches alone.
const INLINE_MAX_NS: u64 = 200_000;

/// Whether the event loop may evaluate the next request in place:
/// nothing is queued ahead of it, the observed drain rate says jobs
/// are far cheaper than a handoff, and no saturation-test window is
/// forcing the queue path.
pub(crate) fn inline_eligible(shared: &Shared) -> bool {
    let ns = shared.metrics.drain_ns_per_job.load(Ordering::Relaxed);
    ns != 0
        && ns <= INLINE_MAX_NS
        && shared.config.batch_window.is_zero()
        && shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty()
}

/// Writes a minimal access-log line for requests that never become jobs
/// (control kinds, parse failures, queue rejections). No-op when no
/// access log is configured.
fn log_simple(shared: &Shared, id: &str, kind: &str, outcome: &str) {
    if let Some(log) = &shared.access_log {
        log.log(access_log::simple_line(id, kind, outcome));
    }
}

/// Parses, admits, or rejects one request line. With `inline_eval`,
/// eligible evaluation jobs run on the calling thread (the event
/// loop's fast path); everything else goes through the queue.
pub(crate) fn handle_line_from(
    shared: &Arc<Shared>,
    line: &str,
    sink: &Arc<dyn ResponseSink>,
    inline_eval: bool,
) {
    // Frame-receipt timestamp for the flight recorder's decode stage;
    // one clock read (~5 ns) even when tracing is off.
    let t0 = clock::now();
    let want_trace = shared.flight.is_some() || shared.access_log.is_some();
    match protocol::parse_request(line) {
        Err((id, msg)) => {
            sink.send(&protocol::err_response(&id, "bad_request", &msg, None));
            log_simple(shared, &id, "?", "bad_request");
        }
        Ok(Request::Stats { id }) => {
            sink.send(&stats_response(shared, &id));
            log_simple(shared, &id, "stats", "ok");
        }
        Ok(Request::Metrics { id }) => {
            sink.send(&metrics_response(shared, &id));
            log_simple(shared, &id, "metrics", "ok");
        }
        Ok(Request::Debug { id }) => {
            sink.send(&debug_response(shared, &id));
            log_simple(shared, &id, "debug", "ok");
        }
        Ok(Request::Shutdown { id }) => {
            shared.draining.store(true, Ordering::SeqCst);
            shared.not_empty.notify_all();
            shared.wake_loop();
            sink.send(&protocol::ok_response(&id, "shutdown", vec![]));
            log_simple(shared, &id, "shutdown", "ok");
        }
        Ok(Request::Eval {
            id,
            scenario,
            triage,
            deadline_ms,
        }) => {
            let now = Instant::now();
            let deadline_at = deadline_ms
                .map(Duration::from_millis)
                .or(shared.config.default_deadline)
                .map(|d| now + d);
            let trace =
                want_trace.then(|| Arc::new(RequestTrace::begin(id.clone(), scenario.kind(), t0)));
            let job = Job {
                id,
                work: Work::Eval { scenario, triage },
                deadline_at,
                enqueued_at: now,
                sink: Arc::clone(sink),
                trace,
            };
            job.sink.job_started();
            if inline_eval && !shared.draining.load(Ordering::SeqCst) && inline_eligible(shared) {
                let started = Instant::now();
                run_one(shared, job);
                shared.metrics.observe_drain(started.elapsed(), 1);
                return;
            }
            admit_or_reject(shared, job);
        }
        Ok(Request::Refine {
            id,
            spec,
            deadline_ms,
        }) => {
            let now = Instant::now();
            let deadline_at = deadline_ms
                .map(Duration::from_millis)
                .or(shared.config.default_deadline)
                .map(|d| now + d);
            let trace = want_trace.then(|| Arc::new(RequestTrace::begin(id.clone(), "refine", t0)));
            let job = Job {
                id,
                work: Work::Refine(spec),
                deadline_at,
                enqueued_at: now,
                sink: Arc::clone(sink),
                trace,
            };
            job.sink.job_started();
            // A refine fans out over a whole grid; it never takes the
            // event loop's inline fast path.
            admit_or_reject(shared, job);
        }
    }
}

/// Admits a job or answers it with `queue_full` + a backpressure hint.
fn admit_or_reject(shared: &Arc<Shared>, job: Job) {
    if let Err(job) = admit(shared, job) {
        shared.metrics.rejected.inc();
        job.sink.send(&protocol::err_response(
            &job.id,
            "queue_full",
            "admission queue is full",
            Some(retry_after_ms(shared)),
        ));
        job.sink.job_finished();
        let kind = job.trace.as_ref().map_or("?", |t| t.kind());
        log_simple(shared, &job.id, kind, "queue_full");
    }
}

/// Bounded admission: refuses (returning the job, boxed to keep the
/// `Err` small) when draining or at capacity — the queue never grows
/// past `queue_cap`.
fn admit(shared: &Shared, job: Job) -> Result<(), Box<Job>> {
    if shared.draining.load(Ordering::SeqCst) {
        return Err(Box::new(job));
    }
    let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
    if q.len() >= shared.config.queue_cap {
        return Err(Box::new(job));
    }
    q.push_back(job);
    drop(q);
    shared.not_empty.notify_one();
    Ok(())
}

/// The backpressure hint: how long until a full queue has drained,
/// estimated from the observed per-job worker time. Before any batch
/// has completed the estimate is the 1 ms floor; the hint is capped at
/// 10 s so a stalled pool cannot park clients forever.
fn retry_after_ms(shared: &Shared) -> u64 {
    let ns_per_job = shared.metrics.drain_ns_per_job.load(Ordering::Relaxed);
    let queue_ns =
        ns_per_job as u128 * shared.config.queue_cap as u128 / shared.workers.max(1) as u128;
    ((queue_ns / 1_000_000) as u64).clamp(1, 10_000)
}

/// One evaluation worker: wait → drain up to `batch_max` → evaluate →
/// respond. Waking workers on first enqueue gives immediate dispatch
/// when the pool has idle capacity; batch draining gives coalescing
/// when it does not.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        // Wait for work (or drain).
        {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            while q.is_empty() {
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                let (guard, _) = shared
                    .not_empty
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }
        // Test-only saturation knob: emulate the old fixed-window
        // batcher by stalling between wakeup and drain.
        if !shared.config.batch_window.is_zero() {
            std::thread::sleep(shared.config.batch_window);
        }
        let batch: Vec<Job> = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            let n = q.len().min(shared.config.batch_max);
            q.drain(..n).collect()
        };
        if batch.is_empty() {
            continue;
        }
        // Every drained job leaves the admission queue *now*; time until
        // its own evaluation starts is batch serialization.
        for job in &batch {
            if let Some(t) = &job.trace {
                t.mark_once(flight::Stage::Queue);
            }
        }
        let started = Instant::now();
        let jobs = batch.len();
        run_batch(shared, batch);
        shared.metrics.observe_drain(started.elapsed(), jobs);
    }
}

/// Population size behind one distribution digest (finite + NaN trials).
fn trial_count(d: &xlda_core::mc::McDistribution) -> u64 {
    (d.summary.trials + d.summary.nan_count) as u64
}

/// Extracts a printable panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_string())
}

/// Evaluates one drained batch and writes every response.
fn run_batch(shared: &Arc<Shared>, batch: Vec<Job>) {
    for job in batch {
        run_one(shared, job);
    }
}

/// Runs one job under per-job containment and sends its response.
fn run_one(shared: &Arc<Shared>, job: Job) {
    let metrics = &shared.metrics;
    let eval_start = Instant::now();
    metrics
        .queue_wait
        .record_duration(eval_start.saturating_duration_since(job.enqueued_at));
    let Job {
        id,
        work,
        deadline_at,
        enqueued_at,
        sink,
        trace,
    } = job;
    if let Some(t) = &trace {
        // Inline fast-path jobs never saw the worker drain; close the
        // queue stage here so it reads as (near) zero instead of unset.
        t.mark_once(flight::Stage::Queue);
        t.mark(flight::Stage::Batch);
    }
    let (line, outcome) = if deadline_at.is_some_and(|t| eval_start >= t) {
        metrics.deadline_expired.inc();
        (
            protocol::err_response(&id, "deadline", "deadline exceeded", None),
            "deadline",
        )
    } else {
        match work {
            Work::Eval { scenario, triage } => eval_response(
                shared,
                &id,
                &*scenario,
                triage.as_ref(),
                enqueued_at,
                eval_start,
                trace.as_deref(),
            ),
            Work::Refine(spec) => refine_response(
                shared,
                &id,
                spec,
                deadline_at,
                enqueued_at,
                eval_start,
                trace.as_deref(),
            ),
        }
    };
    if let Some(t) = &trace {
        t.mark(flight::Stage::Eval);
    }
    sink.send(&line);
    sink.job_finished();
    if let Some(t) = trace {
        t.mark(flight::Stage::Write);
        let done = t.complete(outcome);
        if let Some(log) = &shared.access_log {
            log.log(access_log::request_line(&done));
        }
        if let Some(rec) = &shared.flight {
            rec.observe(done, metrics.drain_ns_per_job.load(Ordering::Relaxed));
        }
    }
}

/// Cache counters before/after one evaluation, for trace attribution.
/// The counters are process-global, so under concurrent workers the
/// delta can include a neighbour's lookups — attribution, not audit.
fn cache_marks(shared: &Shared) -> (u64, u64, u64) {
    let (mh, mm) = memo::totals();
    let sh = shared.store.as_ref().map_or(0, |s| s.stats().hits);
    (mh, mm, sh)
}

/// Evaluates one scenario and builds its response line plus the outcome
/// code the flight recorder and access log attribute it under.
fn eval_response(
    shared: &Arc<Shared>,
    id: &str,
    scenario: &dyn Scenario,
    triage: Option<&TriageSpec>,
    enqueued_at: Instant,
    eval_start: Instant,
    trace: Option<&RequestTrace>,
) -> (String, &'static str) {
    let metrics = &shared.metrics;
    let before = trace.map(|_| cache_marks(shared));
    // evaluate(), not candidates(): Monte-Carlo scenarios run their
    // trial population exactly once and return distribution digests
    // alongside the candidate view; deterministic scenarios fall
    // through the default impl at zero cost. With a store configured,
    // the digest lookup happens first and a hit skips the engine
    // entirely — bit-identical either way, so responses cannot tell.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match &shared.store {
        Some(store) => store.evaluate_cached(scenario),
        None => scenario.evaluate(),
    }))
    .map_err(|p| JobError::Panicked(panic_message(p)))
    .and_then(|r| r.map_err(JobError::Eval));
    metrics.compute.record_duration(eval_start.elapsed());
    if let (Some(t), Some((mh0, mm0, sh0))) = (trace, before) {
        let (mh1, mm1, sh1) = cache_marks(shared);
        t.set_cache(
            mh1.saturating_sub(mh0),
            mm1.saturating_sub(mm0),
            sh1.saturating_sub(sh0),
        );
    }
    match result {
        Ok(eval) => {
            let cands = eval.candidates;
            metrics.observe_request(scenario.kind(), id, enqueued_at.elapsed());
            metrics.completed.inc();
            metrics.points.add(cands.len() as u64);
            if let Some(t) = trace {
                t.set_points(cands.len() as u64);
            }
            // Each digest summarizes the same request population, so
            // take the max rather than summing across distributions.
            metrics.mc_trials.add(
                eval.distributions
                    .iter()
                    .map(trial_count)
                    .max()
                    .unwrap_or(0),
            );
            let mut body = vec![(
                "candidates",
                Json::Arr(cands.iter().map(protocol::candidate_json).collect()),
            )];
            if !eval.distributions.is_empty() {
                body.push((
                    "distributions",
                    Json::Arr(
                        eval.distributions
                            .iter()
                            .map(protocol::distribution_json)
                            .collect(),
                    ),
                ));
            }
            if let Some(spec) = triage {
                let ranking = rank(&cands, &spec.objective());
                body.push((
                    "ranking",
                    Json::Arr(
                        ranking
                            .iter()
                            .map(|r| {
                                obj(vec![
                                    ("name", Json::Str(r.name.clone())),
                                    ("score", Json::Num(r.score)),
                                    ("meets_floor", Json::Bool(r.meets_floor)),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            (protocol::ok_response(id, scenario.kind(), body), "ok")
        }
        Err(JobError::Eval(e)) => {
            let code = if e.is_infeasible() {
                "infeasible"
            } else {
                "invalid"
            };
            (protocol::err_response(id, code, &e.to_string(), None), code)
        }
        Err(JobError::Panicked(msg)) => (
            protocol::err_response(id, "panic", &format!("evaluation panicked: {msg}"), None),
            "panic",
        ),
    }
}

/// Executes one `refine` job: resolves every grid point the client does
/// not already hold, preferring store lookups over fresh evaluations.
/// Misses fall through to the normal engine, so refine is exact — a
/// cold store just makes it slower.
fn refine_response(
    shared: &Arc<Shared>,
    id: &str,
    spec: RefineSpec,
    deadline_at: Option<Instant>,
    enqueued_at: Instant,
    eval_start: Instant,
    trace: Option<&RequestTrace>,
) -> (String, &'static str) {
    let metrics = &shared.metrics;
    let before = trace.map(|_| cache_marks(shared));
    let store = match &shared.store {
        Some(s) => Arc::clone(s),
        // No configured store: refine still works, resolving through a
        // transient in-memory store (same semantics, no persistence).
        None => Arc::new(ResultStore::in_memory()),
    };
    let RefineSpec {
        base,
        points,
        known,
        mode,
        triage,
    } = spec;
    let n = points.len();
    let objective = triage
        .as_ref()
        .map(|t| t.objective())
        .unwrap_or_else(|| Objective::latency_first(None));
    let (digests, scenarios): (Vec<_>, Vec<_>) =
        points.into_iter().map(|p| (p.digest, p.scenario)).unzip();
    // Snapshot which digests the store already held, so statuses can
    // distinguish a lookup ("cached") from fresh work ("evaluated").
    let pre_cached: Vec<bool> = digests.iter().map(|d| store.contains(d)).collect();
    let mut statuses: Vec<&'static str> = vec!["pruned"; n];
    let mut results: Vec<Option<Result<Evaluation, String>>> = (0..n).map(|_| None).collect();
    let mut ranking: Vec<(usize, String, f64)> = Vec::new();
    match mode {
        RefineMode::Full => {
            for i in 0..n {
                if known.contains(&digests[i]) {
                    statuses[i] = "known";
                    continue;
                }
                if deadline_at.is_some_and(|t| Instant::now() >= t) {
                    // Everything resolved so far is already in the
                    // store; a retry resumes exactly here.
                    statuses[i] = "deadline";
                    continue;
                }
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    store.evaluate_cached(&*scenarios[i])
                }));
                let (status, result) = match r {
                    Ok(Ok(ev)) => (if pre_cached[i] { "cached" } else { "evaluated" }, Ok(ev)),
                    Ok(Err(e)) => ("failed", Err(e.to_string())),
                    Err(p) => (
                        "failed",
                        Err(format!("evaluation panicked: {}", panic_message(p))),
                    ),
                };
                statuses[i] = status;
                results[i] = Some(result);
            }
            if triage.is_some() {
                ranking = rank_resolved(&results, &objective);
            }
        }
        RefineMode::Halving { fraction } => {
            let opts = SweepOptions::builder().threads(1).build();
            let config = HalvingConfig {
                fraction,
                objective,
            };
            let outcome = successive_halving(&store, &scenarios, &opts, &config);
            for (i, r) in outcome.results.into_iter().enumerate() {
                let Some(r) = r else { continue };
                let (status, result) = match r {
                    Ok(ev) => (
                        if known.contains(&digests[i]) {
                            "known"
                        } else if pre_cached[i] {
                            "cached"
                        } else {
                            "evaluated"
                        },
                        Ok(ev),
                    ),
                    Err(e) => ("failed", Err(e.to_string())),
                };
                statuses[i] = status;
                results[i] = Some(result);
            }
            ranking = outcome
                .ranking
                .into_iter()
                .map(|r| (r.index, r.name, r.score))
                .collect();
        }
    }
    metrics.compute.record_duration(eval_start.elapsed());
    metrics.observe_request("refine", id, enqueued_at.elapsed());
    metrics.completed.inc();
    if let (Some(t), Some((mh0, mm0, sh0))) = (trace, before) {
        let (mh1, mm1, sh1) = cache_marks(shared);
        t.set_cache(
            mh1.saturating_sub(mh0),
            mm1.saturating_sub(mm0),
            sh1.saturating_sub(sh0),
        );
    }
    let count = |tag: &str| statuses.iter().filter(|s| **s == tag).count();
    let (evaluated, cached, known_n) = (count("evaluated"), count("cached"), count("known"));
    let mut returned_points = 0u64;
    let points_json: Vec<Json> = (0..n)
        .map(|i| {
            let mut fields = vec![
                ("digest", Json::Str(digests[i].to_hex())),
                ("status", Json::Str(statuses[i].to_string())),
            ];
            match &results[i] {
                // Known points answer with digest + status only — the
                // client said it already holds them.
                Some(Ok(ev)) if statuses[i] != "known" => {
                    returned_points += ev.candidates.len() as u64;
                    fields.push((
                        "candidates",
                        Json::Arr(ev.candidates.iter().map(protocol::candidate_json).collect()),
                    ));
                    if !ev.distributions.is_empty() {
                        fields.push((
                            "distributions",
                            Json::Arr(
                                ev.distributions
                                    .iter()
                                    .map(protocol::distribution_json)
                                    .collect(),
                            ),
                        ));
                    }
                }
                Some(Err(msg)) => fields.push(("error", Json::Str(msg.clone()))),
                _ => {}
            }
            obj(fields)
        })
        .collect();
    metrics.points.add(returned_points);
    if let Some(t) = trace {
        t.set_points(returned_points);
    }
    let mut body = vec![
        ("base", Json::Str(base)),
        ("grid", Json::Num(n as f64)),
        ("known", Json::Num(known_n as f64)),
        ("cached", Json::Num(cached as f64)),
        ("evaluated", Json::Num(evaluated as f64)),
        ("points", Json::Arr(points_json)),
    ];
    if !ranking.is_empty() {
        body.push((
            "ranking",
            Json::Arr(
                ranking
                    .into_iter()
                    .map(|(index, name, score)| {
                        obj(vec![
                            ("index", Json::Num(index as f64)),
                            ("digest", Json::Str(digests[index].to_hex())),
                            ("name", Json::Str(name)),
                            ("score", Json::Num(score)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    (protocol::ok_response(id, "refine", body), "ok")
}

/// Scores every resolved point by its best candidate under `objective`,
/// best first (ties broken by grid index).
fn rank_resolved(
    results: &[Option<Result<Evaluation, String>>],
    objective: &Objective,
) -> Vec<(usize, String, f64)> {
    let mut scored: Vec<(usize, String, f64)> = results
        .iter()
        .enumerate()
        .filter_map(|(i, r)| {
            let ev = r.as_ref()?.as_ref().ok()?;
            let best = rank(&ev.candidates, objective).into_iter().next()?;
            Some((i, best.name, best.score))
        })
        .collect();
    scored.sort_by(|a, b| xlda_core::order::desc_nan_last(a.2, b.2).then(a.0.cmp(&b.0)));
    scored
}

/// Builds the `stats` response: queue/latency/throughput plus the
/// process-wide memo cache snapshot (warm across requests by design).
/// Latency quantiles come from the same obs histograms the `metrics`
/// endpoint renders, so both endpoints always agree within bucket
/// resolution.
fn stats_response(shared: &Arc<Shared>, id: &str) -> String {
    let queue_depth = shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len();
    let m = &shared.metrics;
    let elapsed = m.started.elapsed().as_secs_f64().max(1e-9);
    let caches: Vec<Json> = memo::snapshot()
        .iter()
        .map(|c| {
            let total = c.hits + c.misses;
            let hit_rate = if total == 0 {
                0.0
            } else {
                c.hits as f64 / total as f64
            };
            obj(vec![
                ("name", Json::Str(c.name.to_string())),
                ("hits", Json::Num(c.hits as f64)),
                ("misses", Json::Num(c.misses as f64)),
                ("entries", Json::Num(c.entries as f64)),
                ("hit_rate", Json::Num(hit_rate)),
            ])
        })
        .collect();
    let kinds: Vec<Json> = m
        .kind_snapshot()
        .iter()
        .map(|(kind, snap)| {
            let q = |p: f64| {
                if snap.is_empty() {
                    0.0
                } else {
                    snap.quantile(p) * 1e3
                }
            };
            obj(vec![
                ("kind", Json::Str(kind.to_string())),
                ("count", Json::Num(snap.count as f64)),
                ("p50_ms", Json::Num(q(0.5))),
                ("p95_ms", Json::Num(q(0.95))),
                ("p99_ms", Json::Num(q(0.99))),
            ])
        })
        .collect();
    protocol::ok_response(
        id,
        "stats",
        vec![
            ("queue_depth", Json::Num(queue_depth as f64)),
            ("queue_cap", Json::Num(shared.config.queue_cap as f64)),
            ("workers", Json::Num(shared.workers as f64)),
            ("open_connections", Json::Num(m.open_connections() as f64)),
            ("completed", Json::Num(m.completed.get() as f64)),
            ("rejected", Json::Num(m.rejected.get() as f64)),
            (
                "deadline_expired",
                Json::Num(m.deadline_expired.get() as f64),
            ),
            ("points_total", Json::Num(m.points.get() as f64)),
            ("points_per_sec", Json::Num(m.points.get() as f64 / elapsed)),
            ("retry_hint_ms", Json::Num(retry_after_ms(shared) as f64)),
            ("p50_ms", Json::Num(Metrics::quantile_ms(&m.latency, 0.5))),
            ("p95_ms", Json::Num(Metrics::quantile_ms(&m.latency, 0.95))),
            ("p99_ms", Json::Num(Metrics::quantile_ms(&m.latency, 0.99))),
            (
                "queue_wait_p50_ms",
                Json::Num(Metrics::quantile_ms(&m.queue_wait, 0.5)),
            ),
            (
                "queue_wait_p95_ms",
                Json::Num(Metrics::quantile_ms(&m.queue_wait, 0.95)),
            ),
            (
                "queue_wait_p99_ms",
                Json::Num(Metrics::quantile_ms(&m.queue_wait, 0.99)),
            ),
            (
                "compute_p50_ms",
                Json::Num(Metrics::quantile_ms(&m.compute, 0.5)),
            ),
            (
                "compute_p95_ms",
                Json::Num(Metrics::quantile_ms(&m.compute, 0.95)),
            ),
            (
                "trace_dropped",
                Json::Num(xlda_obs::trace::dropped() as f64),
            ),
            ("kinds", Json::Arr(kinds)),
            ("flight", flight_json(shared)),
            ("access_log", access_log_json(shared)),
            ("store", store_json(shared)),
            ("caches", Json::Arr(caches)),
        ],
    )
}

/// The `flight` block of the stats/debug responses: recorder counters
/// and the current retention threshold, or `{"enabled": false}`.
fn flight_json(shared: &Arc<Shared>) -> Json {
    match &shared.flight {
        Some(rec) => {
            let s = rec.stats(shared.metrics.drain_ns_per_job.load(Ordering::Relaxed));
            obj(vec![
                ("enabled", Json::Bool(true)),
                ("completed", Json::Num(s.completed as f64)),
                ("retained", Json::Num(s.retained as f64)),
                ("sampled_out", Json::Num(s.dropped as f64)),
                ("slow_threshold_ms", Json::Num(s.threshold_ns as f64 / 1e6)),
            ])
        }
        None => obj(vec![("enabled", Json::Bool(false))]),
    }
}

/// The `access_log` block of the stats response.
fn access_log_json(shared: &Arc<Shared>) -> Json {
    match &shared.access_log {
        Some(log) => obj(vec![
            ("enabled", Json::Bool(true)),
            ("written", Json::Num(log.written() as f64)),
            ("dropped", Json::Num(log.dropped() as f64)),
        ]),
        None => obj(vec![("enabled", Json::Bool(false))]),
    }
}

/// One retained trace as JSON: identity, outcome, exact nanosecond
/// stage breakdown (which telescopes to `total_ns` by construction),
/// and cache attribution. Millisecond mirrors ride along for humans.
fn trace_json(t: &flight::CompletedTrace) -> Json {
    let stages: Vec<Json> = flight::STAGES
        .iter()
        .zip(t.stage_ns.iter())
        .map(|(name, &ns)| {
            obj(vec![
                ("stage", Json::Str(name.to_string())),
                ("ns", Json::Num(ns as f64)),
                ("ms", Json::Num(ns as f64 / 1e6)),
            ])
        })
        .collect();
    obj(vec![
        ("id", Json::Str(t.id.clone())),
        ("kind", Json::Str(t.kind.to_string())),
        ("outcome", Json::Str(t.outcome.to_string())),
        ("ok", Json::Bool(t.is_ok())),
        ("total_ns", Json::Num(t.total_ns as f64)),
        ("total_ms", Json::Num(t.total_ns as f64 / 1e6)),
        ("stages", Json::Arr(stages)),
        ("points", Json::Num(t.points as f64)),
        ("memo_hits", Json::Num(t.memo_hits as f64)),
        ("memo_misses", Json::Num(t.memo_misses as f64)),
        ("store_hits", Json::Num(t.store_hits as f64)),
    ])
}

/// Builds the `debug` response: the flight recorder's retained
/// slow/error traces (slowest first) with their stage trees.
fn debug_response(shared: &Arc<Shared>, id: &str) -> String {
    let traces: Vec<Json> = shared
        .flight
        .as_ref()
        .map(|rec| rec.snapshot().iter().map(trace_json).collect())
        .unwrap_or_default();
    protocol::ok_response(
        id,
        "debug",
        vec![
            ("flight", flight_json(shared)),
            ("traces", Json::Arr(traces)),
        ],
    )
}

/// The `store` block of the stats response: counters when a persistent
/// store is configured, `{"enabled": false}` otherwise.
fn store_json(shared: &Arc<Shared>) -> Json {
    match &shared.store {
        Some(s) => {
            let st = s.stats();
            obj(vec![
                ("enabled", Json::Bool(true)),
                ("entries", Json::Num(st.entries as f64)),
                ("hits", Json::Num(st.hits as f64)),
                ("misses", Json::Num(st.misses as f64)),
                ("hit_rate", Json::Num(st.hit_rate())),
                ("inserted", Json::Num(st.inserted as f64)),
                ("evictions", Json::Num(st.evictions as f64)),
                ("persisted_bytes", Json::Num(st.persisted_bytes as f64)),
                ("io_errors", Json::Num(st.io_errors as f64)),
            ])
        }
        None => obj(vec![("enabled", Json::Bool(false))]),
    }
}

/// Builds the `metrics` response: the Prometheus text exposition of this
/// server's obs registry, plus the process-wide span aggregates and memo
/// cache counters, wrapped in one JSON envelope like every other reply.
fn metrics_response(shared: &Arc<Shared>, id: &str) -> String {
    use std::fmt::Write as _;
    // Attach request-id exemplars to the latency histogram's bucket
    // lines, then reset the window: each scrape sees the slowest
    // observation per bucket since the previous scrape.
    let exemplars = shared.metrics.latency_exemplars.snapshot();
    shared.metrics.latency_exemplars.reset();
    let mut text = xlda_obs::export::attach_exemplars(
        &shared.metrics.registry.prometheus_text(),
        "xlda_serve_request_latency_seconds",
        &exemplars,
    );
    let kinds = shared.metrics.kind_snapshot();
    if !kinds.is_empty() {
        let _ = writeln!(text, "# TYPE xlda_serve_kind_latency_seconds histogram");
        for (kind, snap) in &kinds {
            xlda_obs::export::prometheus_histogram_labeled(
                &mut text,
                "xlda_serve_kind_latency_seconds",
                "kind",
                kind,
                snap,
            );
        }
    }
    xlda_obs::export::prometheus_spans(&mut text, &xlda_obs::aggregate_snapshot());
    let caches = memo::snapshot();
    if !caches.is_empty() {
        for (metric, kind) in [
            ("xlda_memo_cache_hits_total", "counter"),
            ("xlda_memo_cache_misses_total", "counter"),
            ("xlda_memo_cache_entries", "gauge"),
        ] {
            let _ = writeln!(text, "# TYPE {metric} {kind}");
            for c in &caches {
                let v = match metric {
                    "xlda_memo_cache_hits_total" => c.hits,
                    "xlda_memo_cache_misses_total" => c.misses,
                    _ => c.entries,
                };
                let _ = writeln!(text, "{metric}{{cache=\"{}\"}} {v}", c.name);
            }
        }
    }
    if let Some(s) = &shared.store {
        let st = s.stats();
        for (metric, kind, v) in [
            ("xlda_store_hits_total", "counter", st.hits),
            ("xlda_store_misses_total", "counter", st.misses),
            ("xlda_store_inserted_total", "counter", st.inserted),
            ("xlda_store_evictions_total", "counter", st.evictions),
            ("xlda_store_io_errors_total", "counter", st.io_errors),
            ("xlda_store_entries", "gauge", st.entries),
            ("xlda_store_persisted_bytes", "gauge", st.persisted_bytes),
        ] {
            let _ = writeln!(text, "# TYPE {metric} {kind}");
            let _ = writeln!(text, "{metric} {v}");
        }
    }
    protocol::ok_response(
        id,
        "metrics",
        vec![
            (
                "content_type",
                Json::Str("text/plain; version=0.0.4".to_string()),
            ),
            ("prometheus", Json::Str(text)),
        ],
    )
}

/// Event-loop access to per-instance connection accounting.
#[cfg(unix)]
pub(crate) mod loop_support {
    use super::*;

    pub(crate) fn config(shared: &Shared) -> &ServerConfig {
        &shared.config
    }

    pub(crate) fn draining(shared: &Shared) -> bool {
        shared.draining.load(Ordering::SeqCst)
    }

    pub(crate) fn queue_len(shared: &Shared) -> usize {
        shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub(crate) fn connection_opened(shared: &Shared) {
        shared.metrics.connections_opened.inc();
    }

    pub(crate) fn connection_closed(shared: &Shared) {
        shared.metrics.connections_closed.inc();
    }

    pub(crate) fn install_waker(shared: &Shared, waker: crate::conn::Waker) {
        *shared.waker.lock().unwrap_or_else(|e| e.into_inner()) = Some(waker);
    }

    pub(crate) fn clear_waker(shared: &Shared) {
        *shared.waker.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    /// A writer that forwards complete lines to a channel.
    struct ChannelWriter {
        tx: mpsc::Sender<String>,
        buf: Vec<u8>,
    }

    impl Write for ChannelWriter {
        fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
            self.buf.extend_from_slice(data);
            while let Some(nl) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=nl).collect();
                let text = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
                let _ = self.tx.send(text);
            }
            Ok(data.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn test_writer() -> (SharedWriter, mpsc::Receiver<String>) {
        let (tx, rx) = mpsc::channel();
        (
            SharedWriter::new(Box::new(ChannelWriter {
                tx,
                buf: Vec::new(),
            })),
            rx,
        )
    }

    fn recv(rx: &mpsc::Receiver<String>) -> Json {
        let line = rx
            .recv_timeout(Duration::from_secs(30))
            .expect("response within deadline");
        Json::parse(&line).expect("well-formed response line")
    }

    #[test]
    fn evaluates_and_matches_direct_call() {
        let server = Server::new(ServerConfig::default());
        let (w, rx) = test_writer();
        server.handle_line(r#"{"id":"e1","kind":"hdc"}"#, &w);
        let v = recv(&rx);
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        let got = v.get("candidates").and_then(Json::as_arr).unwrap();
        use xlda_core::evaluate::HdcScenario;
        let want = HdcScenario::default().candidates().unwrap();
        assert_eq!(got.len(), want.len());
        for (g, c) in got.iter().zip(&want) {
            assert_eq!(g.get("name").and_then(Json::as_str), Some(c.name.as_str()));
            assert_eq!(
                g.get("latency_s").and_then(Json::as_f64).unwrap().to_bits(),
                c.fom.latency_s.to_bits()
            );
        }
    }

    #[test]
    fn mc_request_serves_distributions_end_to_end() {
        let server = Server::new(ServerConfig::default());
        let (w, rx) = test_writer();
        server.handle_line(
            r#"{"id":"mc1","kind":"mann_mc","scenario":{"trials":64,"seed":3,"hash_bits":16}}"#,
            &w,
        );
        let v = recv(&rx);
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("mann_mc"));
        let dists = v.get("distributions").and_then(Json::as_arr).unwrap();
        assert_eq!(dists.len(), 2);
        let acc = &dists[0];
        assert_eq!(acc.get("name").and_then(Json::as_str), Some("accuracy"));
        assert_eq!(acc.get("trials").and_then(Json::as_f64), Some(64.0));
        for q in ["mean", "std_dev", "p5", "p50", "p95", "yield_fraction"] {
            let x = acc.get(q).and_then(Json::as_f64).unwrap();
            assert!(x.is_finite(), "{q} must be finite");
        }
        // Same trials, same seed: the served digest matches a direct call.
        use xlda_core::evaluate::Scenario as _;
        let direct = xlda_core::mc::MannAccuracyMcScenario {
            mc: xlda_core::mc::McParams {
                trials: 64,
                seed: 3,
                ..xlda_core::mc::McParams::default()
            },
            hash_bits: 16,
            ..xlda_core::mc::MannAccuracyMcScenario::default()
        }
        .evaluate()
        .unwrap();
        assert_eq!(
            acc.get("checksum").and_then(Json::as_str),
            Some(format!("{:016x}", direct.distributions[0].checksum).as_str())
        );
        // Candidates (quantile views) ride alongside.
        let cands = v.get("candidates").and_then(Json::as_arr).unwrap();
        assert_eq!(cands.len(), direct.candidates.len());
    }

    #[test]
    fn mc_invalid_inputs_fail_as_invalid_not_panic() {
        let server = Server::new(ServerConfig::default());
        let (w, rx) = test_writer();
        server.handle_line(
            r#"{"id":"mc2","kind":"mann_mc","scenario":{"trials":8,"hash_bits":4,"relax_decades":-2}}"#,
            &w,
        );
        let v = recv(&rx);
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("code").and_then(Json::as_str), Some("invalid"));
        let msg = v.get("error").and_then(Json::as_str).unwrap();
        assert!(msg.contains("rram.relax"), "{msg}");
    }

    #[test]
    fn malformed_line_yields_bad_request() {
        let server = Server::new(ServerConfig::default());
        let (w, rx) = test_writer();
        server.handle_line("garbage", &w);
        let v = recv(&rx);
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("code").and_then(Json::as_str), Some("bad_request"));
    }

    #[test]
    fn expired_deadline_fails_the_request_only() {
        let server = Server::new(ServerConfig::default());
        let (w, rx) = test_writer();
        server.handle_line(r#"{"id":"d1","kind":"hdc","deadline_ms":0}"#, &w);
        server.handle_line(r#"{"id":"d2","kind":"hdc"}"#, &w);
        let mut by_id = std::collections::HashMap::new();
        for _ in 0..2 {
            let v = recv(&rx);
            by_id.insert(v.get("id").and_then(Json::as_str).unwrap().to_string(), v);
        }
        assert_eq!(
            by_id["d1"].get("code").and_then(Json::as_str),
            Some("deadline")
        );
        assert_eq!(by_id["d2"].get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn saturated_queue_rejects_with_retry_after() {
        // A long pre-drain stall (the batch_window saturation knob) with
        // a single worker makes admissions outpace draining
        // deterministically.
        let server = Server::new(ServerConfig {
            queue_cap: 2,
            threads: 1,
            batch_window: Duration::from_millis(300),
            ..ServerConfig::default()
        });
        let (w, rx) = test_writer();
        for i in 0..6 {
            server.handle_line(&format!(r#"{{"id":"q{i}","kind":"mann"}}"#), &w);
        }
        let mut rejected = 0;
        let mut ok = 0;
        for _ in 0..6 {
            let v = recv(&rx);
            match v.get("ok").and_then(Json::as_bool) {
                Some(true) => ok += 1,
                Some(false) => {
                    assert_eq!(v.get("code").and_then(Json::as_str), Some("queue_full"));
                    let retry = v.get("retry_after_ms").and_then(Json::as_f64).unwrap();
                    assert!(
                        (1.0..=10_000.0).contains(&retry),
                        "hint {retry} out of range"
                    );
                    rejected += 1;
                }
                None => panic!("response without ok"),
            }
        }
        assert_eq!(ok + rejected, 6, "every request answered");
        assert!(rejected >= 2, "cap 2 must reject some of 6 rapid requests");
    }

    #[test]
    fn retry_hint_tracks_observed_drain_rate() {
        let shared = Arc::new(Shared {
            config: ServerConfig {
                queue_cap: 100,
                ..ServerConfig::default()
            },
            workers: 1,
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            draining: AtomicBool::new(false),
            metrics: Metrics::new(),
            store: None,
            flight: None,
            access_log: None,
            #[cfg(unix)]
            waker: Mutex::new(None),
        });
        // No drains observed yet: the hint is the 1 ms floor, not the
        // (now meaningless) batch window.
        assert_eq!(retry_after_ms(&shared), 1);
        // 100 queued jobs at an observed 2 ms/job on one worker ≈ 200 ms.
        shared.metrics.observe_drain(Duration::from_millis(20), 10);
        let hint = retry_after_ms(&shared);
        assert!((150..=250).contains(&hint), "hint {hint} vs ~200 ms drain");
        // A stalled pool cannot park clients past the 10 s cap.
        shared
            .metrics
            .drain_ns_per_job
            .store(u64::MAX / 2, Ordering::Relaxed);
        assert_eq!(retry_after_ms(&shared), 10_000);
    }

    #[test]
    fn stats_reports_queue_and_caches() {
        let server = Server::new(ServerConfig::default());
        let (w, rx) = test_writer();
        server.handle_line(r#"{"id":"e","kind":"hdc"}"#, &w);
        let first = recv(&rx);
        assert_eq!(first.get("ok").and_then(Json::as_bool), Some(true));
        server.handle_line(r#"{"id":"s","kind":"stats"}"#, &w);
        let v = recv(&rx);
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("stats"));
        assert_eq!(v.get("completed").and_then(Json::as_f64), Some(1.0));
        assert!(v.get("workers").and_then(Json::as_f64).unwrap() >= 1.0);
        assert!(v.get("retry_hint_ms").and_then(Json::as_f64).unwrap() >= 1.0);
        assert_eq!(v.get("open_connections").and_then(Json::as_f64), Some(0.0));
        assert!(v.get("p95_ms").and_then(Json::as_f64).unwrap() >= 0.0);
        assert!(v.get("queue_wait_p95_ms").and_then(Json::as_f64).unwrap() >= 0.0);
        assert!(v.get("compute_p95_ms").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(!v.get("caches").and_then(Json::as_arr).unwrap().is_empty());
    }

    #[test]
    fn metrics_renders_prometheus_text_matching_stats() {
        let server = Server::new(ServerConfig::default());
        let (w, rx) = test_writer();
        server.handle_line(r#"{"id":"e","kind":"hdc"}"#, &w);
        let first = recv(&rx);
        assert_eq!(first.get("ok").and_then(Json::as_bool), Some(true));
        server.handle_line(r#"{"id":"m","kind":"metrics"}"#, &w);
        let v = recv(&rx);
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("metrics"));
        assert_eq!(
            v.get("content_type").and_then(Json::as_str),
            Some("text/plain; version=0.0.4")
        );
        let text = v.get("prometheus").and_then(Json::as_str).unwrap();
        // Counters agree with the stats endpoint (per-instance, so the
        // single eval above is exactly what both report).
        assert!(text.contains("# TYPE xlda_serve_completed_total counter"));
        assert!(text.contains("xlda_serve_completed_total 1"));
        assert!(text.contains("xlda_serve_rejected_total 0"));
        assert!(text.contains("xlda_serve_connections_opened_total 0"));
        // The latency histogram saw exactly the one completed request.
        assert!(text.contains("# TYPE xlda_serve_request_latency_seconds histogram"));
        assert!(text.contains("xlda_serve_request_latency_seconds_count 1"));
        assert!(text.contains("xlda_serve_request_latency_seconds_bucket{le=\"+Inf\"} 1"));
        // Process-wide memo caches ride along, labelled by cache name.
        assert!(text.contains("xlda_memo_cache_hits_total{cache="));
    }

    #[test]
    fn shutdown_drains_queued_work_before_returning() {
        let server = Server::new(ServerConfig {
            threads: 1,
            batch_window: Duration::from_millis(20),
            ..ServerConfig::default()
        });
        let (w, rx) = test_writer();
        for i in 0..5 {
            server.handle_line(&format!(r#"{{"id":"g{i}","kind":"hdc"}}"#), &w);
        }
        server.handle_line(r#"{"id":"bye","kind":"shutdown"}"#, &w);
        drop(server); // joins the workers; must not lose admitted work
        let mut answered = std::collections::HashSet::new();
        while let Ok(line) = rx.try_recv() {
            let v = Json::parse(&line).unwrap();
            answered.insert(v.get("id").and_then(Json::as_str).unwrap().to_string());
        }
        for i in 0..5 {
            assert!(answered.contains(&format!("g{i}")), "g{i} dropped");
        }
        assert!(answered.contains("bye"));
    }

    #[test]
    fn debug_returns_traces_whose_stages_telescope_exactly() {
        let server = Server::new(ServerConfig::default());
        let (w, rx) = test_writer();
        for i in 0..4 {
            server.handle_line(&format!(r#"{{"id":"t{i}","kind":"hdc"}}"#), &w);
            let v = recv(&rx);
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        }
        server.handle_line(r#"{"id":"dbg","kind":"debug"}"#, &w);
        let v = recv(&rx);
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("debug"));
        let flight = v.get("flight").unwrap();
        assert_eq!(flight.get("enabled").and_then(Json::as_bool), Some(true));
        // A trace completes *after* its response is sent (the write
        // stage is part of the trace), so the most recent request may
        // not be folded in yet when the debug probe lands.
        assert!(flight.get("completed").and_then(Json::as_f64).unwrap() >= 3.0);
        let traces = v.get("traces").and_then(Json::as_arr).unwrap();
        assert!(!traces.is_empty(), "at least the slowest trace is retained");
        for t in traces {
            let total = t.get("total_ns").and_then(Json::as_f64).unwrap();
            assert!(total >= 1.0);
            let stages = t.get("stages").and_then(Json::as_arr).unwrap();
            assert_eq!(stages.len(), 5);
            // Stage durations are exact nanosecond diffs of one clock, so
            // they telescope to the total with no rounding slop at all.
            let sum: f64 = stages
                .iter()
                .map(|s| s.get("ns").and_then(Json::as_f64).unwrap())
                .sum();
            assert_eq!(sum, total, "stage tree must telescope to total_ns");
            assert!(t.get("points").and_then(Json::as_f64).unwrap() > 0.0);
        }
    }

    #[test]
    fn stats_reports_p99_per_kind_quantiles_and_flight_blocks() {
        let server = Server::new(ServerConfig::default());
        let (w, rx) = test_writer();
        server.handle_line(r#"{"id":"a","kind":"hdc"}"#, &w);
        server.handle_line(r#"{"id":"b","kind":"mann"}"#, &w);
        for _ in 0..2 {
            let v = recv(&rx);
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        }
        server.handle_line(r#"{"id":"s","kind":"stats"}"#, &w);
        let v = recv(&rx);
        let p50 = v.get("p50_ms").and_then(Json::as_f64).unwrap();
        let p95 = v.get("p95_ms").and_then(Json::as_f64).unwrap();
        let p99 = v.get("p99_ms").and_then(Json::as_f64).unwrap();
        assert!(
            p50 <= p95 && p95 <= p99,
            "quantile ladder {p50} {p95} {p99}"
        );
        assert!(v.get("queue_wait_p99_ms").and_then(Json::as_f64).unwrap() >= 0.0);
        assert!(v.get("trace_dropped").and_then(Json::as_f64).unwrap() >= 0.0);
        let kinds = v.get("kinds").and_then(Json::as_arr).unwrap();
        let names: Vec<&str> = kinds
            .iter()
            .map(|k| k.get("kind").and_then(Json::as_str).unwrap())
            .collect();
        assert!(
            names.contains(&"hdc") && names.contains(&"mann"),
            "{names:?}"
        );
        for k in kinds {
            assert_eq!(k.get("count").and_then(Json::as_f64), Some(1.0));
            assert!(k.get("p99_ms").and_then(Json::as_f64).unwrap() >= 0.0);
        }
        let flight = v.get("flight").unwrap();
        assert_eq!(flight.get("enabled").and_then(Json::as_bool), Some(true));
        // No --access-log on this server: the block says so explicitly.
        let log = v.get("access_log").unwrap();
        assert_eq!(log.get("enabled").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn metrics_carries_exemplars_and_per_kind_histograms() {
        let server = Server::new(ServerConfig::default());
        let (w, rx) = test_writer();
        server.handle_line(r#"{"id":"ex1","kind":"hdc"}"#, &w);
        let first = recv(&rx);
        assert_eq!(first.get("ok").and_then(Json::as_bool), Some(true));
        server.handle_line(r#"{"id":"m","kind":"metrics"}"#, &w);
        let v = recv(&rx);
        let text = v.get("prometheus").and_then(Json::as_str).unwrap();
        // The slowest (only) request in this scrape window is pinned as
        // the exemplar on exactly the latency bucket it landed in.
        assert!(
            text.contains(" # {request_id=\"ex1\"} "),
            "missing exemplar in:\n{text}"
        );
        assert!(text.contains("# TYPE xlda_serve_kind_latency_seconds histogram"));
        assert!(text.contains("xlda_serve_kind_latency_seconds_count{kind=\"hdc\"} 1"));
        // Exemplar windows reset per scrape: a second scrape has none.
        server.handle_line(r#"{"id":"m2","kind":"metrics"}"#, &w);
        let v2 = recv(&rx);
        let text2 = v2.get("prometheus").and_then(Json::as_str).unwrap();
        assert!(!text2.contains("# {request_id="), "window must reset");
    }
}
