//! The admission/batching pipeline: queue → batcher → pool → drain.
//!
//! - **Admission.** Connection readers parse one request per line and
//!   push evaluation jobs onto a bounded queue. A full queue rejects
//!   immediately with `retry_after_ms` (explicit backpressure) instead
//!   of buffering unboundedly; `stats` and `shutdown` bypass the queue
//!   so observability survives saturation.
//! - **Batching.** One batcher thread sleeps a short micro-batch window
//!   after the first job arrives, then drains up to `batch_max` jobs
//!   and submits them as *one* sweep over `Box<dyn Scenario>` trait
//!   objects — every request kind shares the same worker pool and the
//!   same process-wide warm memo caches.
//! - **Containment.** Each job evaluates under the sweep engine's
//!   per-point panic/error containment; a panicking or infeasible
//!   scenario fails its own request only. Per-request deadlines are
//!   checked at point start inside the same containment boundary.
//! - **Drain.** `shutdown` (or stdin EOF in `--stdio` mode) stops
//!   admission; the batcher finishes everything already queued before
//!   the server returns — no accepted request is silently dropped.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::json::{obj, Json};
use crate::protocol::{self, Request, TriageSpec};
use xlda_core::evaluate::Scenario;
use xlda_core::sweep::{memo, par_try_map_with, PointFailure, SweepOptions};
use xlda_core::triage::rank;
use xlda_core::XldaError;
use xlda_obs::{Counter, Histogram, Registry};

/// Tuning knobs for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Admission queue capacity; beyond this, requests are rejected
    /// with `retry_after_ms`.
    pub queue_cap: usize,
    /// Micro-batch coalescing window after the first queued job.
    pub batch_window: Duration,
    /// Maximum jobs drained into one sweep submission.
    pub batch_max: usize,
    /// Worker threads per sweep (0 = available parallelism).
    pub threads: usize,
    /// Default per-request deadline applied when a request carries
    /// none. `None` means requests without a deadline never expire.
    pub default_deadline: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            queue_cap: 256,
            batch_window: Duration::from_millis(2),
            batch_max: 64,
            threads: 0,
            default_deadline: None,
        }
    }
}

/// One admitted evaluation job.
struct Job {
    id: String,
    scenario: Box<dyn Scenario>,
    triage: Option<TriageSpec>,
    deadline_at: Option<Instant>,
    enqueued_at: Instant,
    writer: SharedWriter,
}

/// Why a job failed; surfaced through the sweep engine's containment.
enum JobError {
    Deadline,
    Eval(XldaError),
}

/// Lock-free per-instance instruments behind the `stats` and `metrics`
/// endpoints (an obs [`Registry`], so every value is also renderable as
/// Prometheus text). Per server instance, not process-global: tests and
/// embedders can run several servers without cross-talk.
struct Metrics {
    registry: Registry,
    /// Enqueue-to-response latency of completed requests, seconds.
    latency: Arc<Histogram>,
    /// Enqueue-to-evaluation-start wait, seconds (queueing + batching).
    queue_wait: Arc<Histogram>,
    /// Pure evaluation time per request, seconds.
    compute: Arc<Histogram>,
    completed: Arc<Counter>,
    rejected: Arc<Counter>,
    deadline_expired: Arc<Counter>,
    points: Arc<Counter>,
    started: Instant,
}

impl Metrics {
    fn new() -> Self {
        let registry = Registry::new();
        Self {
            latency: registry.histogram("xlda_serve_request_latency_seconds"),
            queue_wait: registry.histogram("xlda_serve_queue_wait_seconds"),
            compute: registry.histogram("xlda_serve_compute_seconds"),
            completed: registry.counter("xlda_serve_completed_total"),
            rejected: registry.counter("xlda_serve_rejected_total"),
            deadline_expired: registry.counter("xlda_serve_deadline_expired_total"),
            points: registry.counter("xlda_serve_points_total"),
            started: Instant::now(),
            registry,
        }
    }

    /// A histogram quantile in milliseconds, 0.0 when empty (matching
    /// the pre-obs stats shape).
    fn quantile_ms(h: &Histogram, p: f64) -> f64 {
        let snap = h.snapshot();
        if snap.is_empty() {
            0.0
        } else {
            snap.quantile(p) * 1e3
        }
    }
}

struct Shared {
    config: ServerConfig,
    queue: Mutex<VecDeque<Job>>,
    not_empty: Condvar,
    draining: AtomicBool,
    metrics: Metrics,
}

/// A line-oriented output sink shared between the admitting reader
/// (rejections, stats) and the batcher (evaluation responses).
#[derive(Clone)]
pub struct SharedWriter(Arc<Mutex<Box<dyn Write + Send>>>);

impl SharedWriter {
    /// Wraps a sink. Each `send` appends exactly one line and flushes.
    pub fn new(w: Box<dyn Write + Send>) -> Self {
        Self(Arc::new(Mutex::new(w)))
    }

    fn send(&self, line: &str) {
        let mut w = self.0.lock().unwrap_or_else(|e| e.into_inner());
        // A dead peer is not a server error; drop the response.
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }
}

/// The evaluation service. Construct once, then run in stdio or TCP
/// mode; both share the same pipeline and warm caches.
pub struct Server {
    shared: Arc<Shared>,
    batcher: Option<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Starts the batcher; the server is ready to admit requests.
    pub fn new(config: ServerConfig) -> Self {
        let shared = Arc::new(Shared {
            config,
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            draining: AtomicBool::new(false),
            metrics: Metrics::new(),
        });
        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || batcher_loop(&shared))
        };
        Self {
            shared,
            batcher: Some(batcher),
        }
    }

    /// Whether a drain has been requested.
    pub fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Requests a graceful drain: admission stops, queued work
    /// completes, run loops return.
    pub fn shutdown(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.not_empty.notify_all();
    }

    /// Serves one request line against the given response writer.
    /// Exposed so both transports (and tests) share one code path.
    pub fn handle_line(&self, line: &str, writer: &SharedWriter) {
        handle_line(&self.shared, line, writer);
    }

    /// Runs the stdio transport: one request per stdin line, one
    /// response per stdout line. Returns after EOF or `shutdown`,
    /// once all admitted work has completed.
    pub fn run_stdio(mut self) {
        let writer = SharedWriter::new(Box::new(std::io::stdout()));
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            handle_line(&self.shared, &line, &writer);
            if self.draining() {
                break;
            }
        }
        self.shutdown();
        self.join();
    }

    /// Runs the TCP transport (thread per connection) until a
    /// `shutdown` request drains the server.
    pub fn run_tcp(mut self, listener: TcpListener) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        while !self.draining() {
            match listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&self.shared);
                    std::thread::spawn(move || connection_loop(&shared, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
        self.join();
        Ok(())
    }

    /// Waits for the batcher to finish draining the queue.
    fn join(&mut self) {
        self.shutdown();
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.join();
    }
}

fn connection_loop(shared: &Arc<Shared>, stream: TcpStream) {
    // Line-at-a-time request/response traffic is exactly the pattern
    // Nagle + delayed ACK turns into ~40 ms stalls; disable batching.
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer = SharedWriter::new(Box::new(write_half));
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        handle_line(shared, &line, &writer);
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
    }
}

/// Parses, admits, or rejects one request line.
fn handle_line(shared: &Arc<Shared>, line: &str, writer: &SharedWriter) {
    match protocol::parse_request(line) {
        Err((id, msg)) => writer.send(&protocol::err_response(&id, "bad_request", &msg, None)),
        Ok(Request::Stats { id }) => writer.send(&stats_response(shared, &id)),
        Ok(Request::Metrics { id }) => writer.send(&metrics_response(shared, &id)),
        Ok(Request::Shutdown { id }) => {
            shared.draining.store(true, Ordering::SeqCst);
            shared.not_empty.notify_all();
            writer.send(&protocol::ok_response(&id, "shutdown", vec![]));
        }
        Ok(Request::Eval {
            id,
            scenario,
            triage,
            deadline_ms,
        }) => {
            let now = Instant::now();
            let deadline_at = deadline_ms
                .map(Duration::from_millis)
                .or(shared.config.default_deadline)
                .map(|d| now + d);
            let job = Job {
                id,
                scenario,
                triage,
                deadline_at,
                enqueued_at: now,
                writer: writer.clone(),
            };
            if let Err(job) = admit(shared, job) {
                shared.metrics.rejected.inc();
                let retry_ms = (shared.config.batch_window.as_millis() as u64).max(1);
                job.writer.send(&protocol::err_response(
                    &job.id,
                    "queue_full",
                    "admission queue is full",
                    Some(retry_ms),
                ));
            }
        }
    }
}

/// Bounded admission: refuses (returning the job) when draining or at
/// capacity — the queue never grows past `queue_cap`.
fn admit(shared: &Shared, job: Job) -> Result<(), Job> {
    if shared.draining.load(Ordering::SeqCst) {
        return Err(job);
    }
    let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
    if q.len() >= shared.config.queue_cap {
        return Err(job);
    }
    q.push_back(job);
    drop(q);
    shared.not_empty.notify_one();
    Ok(())
}

/// The single batching thread: wait → coalesce → sweep → respond.
fn batcher_loop(shared: &Arc<Shared>) {
    loop {
        // Wait for work (or drain).
        {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            while q.is_empty() {
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                let (guard, _) = shared
                    .not_empty
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }
        // Micro-batch window: let compatible requests pile up so one
        // sweep submission amortizes pool wakeup and shares cache hits.
        if !shared.config.batch_window.is_zero() {
            std::thread::sleep(shared.config.batch_window);
        }
        let batch: Vec<Job> = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            let n = q.len().min(shared.config.batch_max);
            q.drain(..n).collect()
        };
        if batch.is_empty() {
            continue;
        }
        run_batch(shared, batch);
    }
}

/// Evaluates one coalesced batch on the shared pool and writes every
/// response.
fn run_batch(shared: &Arc<Shared>, batch: Vec<Job>) {
    // Batch-level safety net: the sweep stops claiming points once the
    // latest per-job deadline has passed (per-job checks below handle
    // the individual budgets).
    let now = Instant::now();
    let batch_deadline = batch
        .iter()
        .map(|j| j.deadline_at)
        .collect::<Option<Vec<_>>>()
        .and_then(|ds| ds.into_iter().max())
        .map(|t| t.saturating_duration_since(now));
    let mut opts = SweepOptions::builder().threads(shared.config.threads);
    if let Some(d) = batch_deadline {
        opts = opts.deadline(d);
    }
    let opts = opts.build();

    let metrics = &shared.metrics;
    let results = par_try_map_with(
        &batch,
        |job| {
            let eval_start = Instant::now();
            metrics
                .queue_wait
                .record_duration(eval_start.saturating_duration_since(job.enqueued_at));
            if job.deadline_at.is_some_and(|t| eval_start >= t) {
                return Err(JobError::Deadline);
            }
            let result = job.scenario.candidates().map_err(JobError::Eval);
            metrics.compute.record_duration(eval_start.elapsed());
            result
        },
        &opts,
    );

    for (job, result) in batch.iter().zip(results) {
        let line = match result {
            Ok(cands) => {
                metrics.latency.record_duration(job.enqueued_at.elapsed());
                metrics.completed.inc();
                metrics.points.add(cands.len() as u64);
                let mut body = vec![(
                    "candidates",
                    Json::Arr(cands.iter().map(protocol::candidate_json).collect()),
                )];
                if let Some(spec) = &job.triage {
                    let ranking = rank(&cands, &spec.objective());
                    body.push((
                        "ranking",
                        Json::Arr(
                            ranking
                                .iter()
                                .map(|r| {
                                    obj(vec![
                                        ("name", Json::Str(r.name.clone())),
                                        ("score", Json::Num(r.score)),
                                        ("meets_floor", Json::Bool(r.meets_floor)),
                                    ])
                                })
                                .collect(),
                        ),
                    ));
                }
                protocol::ok_response(&job.id, job.scenario.kind(), body)
            }
            Err(PointFailure::Error(JobError::Deadline)) | Err(PointFailure::DeadlineExceeded) => {
                metrics.deadline_expired.inc();
                protocol::err_response(&job.id, "deadline", "deadline exceeded", None)
            }
            Err(PointFailure::Error(JobError::Eval(e))) => {
                let code = if e.is_infeasible() {
                    "infeasible"
                } else {
                    "invalid"
                };
                protocol::err_response(&job.id, code, &e.to_string(), None)
            }
            Err(PointFailure::Panicked(msg)) => protocol::err_response(
                &job.id,
                "panic",
                &format!("evaluation panicked: {msg}"),
                None,
            ),
        };
        job.writer.send(&line);
    }
}

/// Builds the `stats` response: queue/latency/throughput plus the
/// process-wide memo cache snapshot (warm across requests by design).
/// Latency quantiles come from the same obs histograms the `metrics`
/// endpoint renders, so both endpoints always agree within bucket
/// resolution.
fn stats_response(shared: &Arc<Shared>, id: &str) -> String {
    let queue_depth = shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len();
    let m = &shared.metrics;
    let elapsed = m.started.elapsed().as_secs_f64().max(1e-9);
    let caches: Vec<Json> = memo::snapshot()
        .iter()
        .map(|c| {
            let total = c.hits + c.misses;
            let hit_rate = if total == 0 {
                0.0
            } else {
                c.hits as f64 / total as f64
            };
            obj(vec![
                ("name", Json::Str(c.name.to_string())),
                ("hits", Json::Num(c.hits as f64)),
                ("misses", Json::Num(c.misses as f64)),
                ("entries", Json::Num(c.entries as f64)),
                ("hit_rate", Json::Num(hit_rate)),
            ])
        })
        .collect();
    protocol::ok_response(
        id,
        "stats",
        vec![
            ("queue_depth", Json::Num(queue_depth as f64)),
            ("queue_cap", Json::Num(shared.config.queue_cap as f64)),
            ("completed", Json::Num(m.completed.get() as f64)),
            ("rejected", Json::Num(m.rejected.get() as f64)),
            (
                "deadline_expired",
                Json::Num(m.deadline_expired.get() as f64),
            ),
            ("points_total", Json::Num(m.points.get() as f64)),
            ("points_per_sec", Json::Num(m.points.get() as f64 / elapsed)),
            ("p50_ms", Json::Num(Metrics::quantile_ms(&m.latency, 0.5))),
            ("p95_ms", Json::Num(Metrics::quantile_ms(&m.latency, 0.95))),
            (
                "queue_wait_p50_ms",
                Json::Num(Metrics::quantile_ms(&m.queue_wait, 0.5)),
            ),
            (
                "queue_wait_p95_ms",
                Json::Num(Metrics::quantile_ms(&m.queue_wait, 0.95)),
            ),
            (
                "compute_p50_ms",
                Json::Num(Metrics::quantile_ms(&m.compute, 0.5)),
            ),
            (
                "compute_p95_ms",
                Json::Num(Metrics::quantile_ms(&m.compute, 0.95)),
            ),
            ("caches", Json::Arr(caches)),
        ],
    )
}

/// Builds the `metrics` response: the Prometheus text exposition of this
/// server's obs registry, plus the process-wide span aggregates and memo
/// cache counters, wrapped in one JSON envelope like every other reply.
fn metrics_response(shared: &Arc<Shared>, id: &str) -> String {
    use std::fmt::Write as _;
    let mut text = shared.metrics.registry.prometheus_text();
    xlda_obs::export::prometheus_spans(&mut text, &xlda_obs::aggregate_snapshot());
    let caches = memo::snapshot();
    if !caches.is_empty() {
        for (metric, kind) in [
            ("xlda_memo_cache_hits_total", "counter"),
            ("xlda_memo_cache_misses_total", "counter"),
            ("xlda_memo_cache_entries", "gauge"),
        ] {
            let _ = writeln!(text, "# TYPE {metric} {kind}");
            for c in &caches {
                let v = match metric {
                    "xlda_memo_cache_hits_total" => c.hits,
                    "xlda_memo_cache_misses_total" => c.misses,
                    _ => c.entries,
                };
                let _ = writeln!(text, "{metric}{{cache=\"{}\"}} {v}", c.name);
            }
        }
    }
    protocol::ok_response(
        id,
        "metrics",
        vec![
            (
                "content_type",
                Json::Str("text/plain; version=0.0.4".to_string()),
            ),
            ("prometheus", Json::Str(text)),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    /// A writer that forwards complete lines to a channel.
    struct ChannelWriter {
        tx: mpsc::Sender<String>,
        buf: Vec<u8>,
    }

    impl Write for ChannelWriter {
        fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
            self.buf.extend_from_slice(data);
            while let Some(nl) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=nl).collect();
                let text = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
                let _ = self.tx.send(text);
            }
            Ok(data.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn test_writer() -> (SharedWriter, mpsc::Receiver<String>) {
        let (tx, rx) = mpsc::channel();
        (
            SharedWriter::new(Box::new(ChannelWriter {
                tx,
                buf: Vec::new(),
            })),
            rx,
        )
    }

    fn recv(rx: &mpsc::Receiver<String>) -> Json {
        let line = rx
            .recv_timeout(Duration::from_secs(30))
            .expect("response within deadline");
        Json::parse(&line).expect("well-formed response line")
    }

    #[test]
    fn evaluates_and_matches_direct_call() {
        let server = Server::new(ServerConfig::default());
        let (w, rx) = test_writer();
        server.handle_line(r#"{"id":"e1","kind":"hdc"}"#, &w);
        let v = recv(&rx);
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        let got = v.get("candidates").and_then(Json::as_arr).unwrap();
        use xlda_core::evaluate::HdcScenario;
        let want = HdcScenario::default().candidates().unwrap();
        assert_eq!(got.len(), want.len());
        for (g, c) in got.iter().zip(&want) {
            assert_eq!(g.get("name").and_then(Json::as_str), Some(c.name.as_str()));
            assert_eq!(
                g.get("latency_s").and_then(Json::as_f64).unwrap().to_bits(),
                c.fom.latency_s.to_bits()
            );
        }
    }

    #[test]
    fn malformed_line_yields_bad_request() {
        let server = Server::new(ServerConfig::default());
        let (w, rx) = test_writer();
        server.handle_line("garbage", &w);
        let v = recv(&rx);
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("code").and_then(Json::as_str), Some("bad_request"));
    }

    #[test]
    fn expired_deadline_fails_the_request_only() {
        let server = Server::new(ServerConfig::default());
        let (w, rx) = test_writer();
        server.handle_line(r#"{"id":"d1","kind":"hdc","deadline_ms":0}"#, &w);
        server.handle_line(r#"{"id":"d2","kind":"hdc"}"#, &w);
        let mut by_id = std::collections::HashMap::new();
        for _ in 0..2 {
            let v = recv(&rx);
            by_id.insert(v.get("id").and_then(Json::as_str).unwrap().to_string(), v);
        }
        assert_eq!(
            by_id["d1"].get("code").and_then(Json::as_str),
            Some("deadline")
        );
        assert_eq!(by_id["d2"].get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn saturated_queue_rejects_with_retry_after() {
        // A long batch window stalls the batcher so admissions outpace
        // draining deterministically.
        let server = Server::new(ServerConfig {
            queue_cap: 2,
            batch_window: Duration::from_millis(300),
            ..ServerConfig::default()
        });
        let (w, rx) = test_writer();
        for i in 0..6 {
            server.handle_line(&format!(r#"{{"id":"q{i}","kind":"mann"}}"#), &w);
        }
        let mut rejected = 0;
        let mut ok = 0;
        for _ in 0..6 {
            let v = recv(&rx);
            match v.get("ok").and_then(Json::as_bool) {
                Some(true) => ok += 1,
                Some(false) => {
                    assert_eq!(v.get("code").and_then(Json::as_str), Some("queue_full"));
                    assert!(v.get("retry_after_ms").and_then(Json::as_f64).unwrap() >= 1.0);
                    rejected += 1;
                }
                None => panic!("response without ok"),
            }
        }
        assert_eq!(ok + rejected, 6, "every request answered");
        assert!(rejected >= 2, "cap 2 must reject some of 6 rapid requests");
    }

    #[test]
    fn stats_reports_queue_and_caches() {
        let server = Server::new(ServerConfig::default());
        let (w, rx) = test_writer();
        server.handle_line(r#"{"id":"e","kind":"hdc"}"#, &w);
        let first = recv(&rx);
        assert_eq!(first.get("ok").and_then(Json::as_bool), Some(true));
        server.handle_line(r#"{"id":"s","kind":"stats"}"#, &w);
        let v = recv(&rx);
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("stats"));
        assert_eq!(v.get("completed").and_then(Json::as_f64), Some(1.0));
        assert!(v.get("p95_ms").and_then(Json::as_f64).unwrap() >= 0.0);
        assert!(v.get("queue_wait_p95_ms").and_then(Json::as_f64).unwrap() >= 0.0);
        assert!(v.get("compute_p95_ms").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(!v.get("caches").and_then(Json::as_arr).unwrap().is_empty());
    }

    #[test]
    fn metrics_renders_prometheus_text_matching_stats() {
        let server = Server::new(ServerConfig::default());
        let (w, rx) = test_writer();
        server.handle_line(r#"{"id":"e","kind":"hdc"}"#, &w);
        let first = recv(&rx);
        assert_eq!(first.get("ok").and_then(Json::as_bool), Some(true));
        server.handle_line(r#"{"id":"m","kind":"metrics"}"#, &w);
        let v = recv(&rx);
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("metrics"));
        assert_eq!(
            v.get("content_type").and_then(Json::as_str),
            Some("text/plain; version=0.0.4")
        );
        let text = v.get("prometheus").and_then(Json::as_str).unwrap();
        // Counters agree with the stats endpoint (per-instance, so the
        // single eval above is exactly what both report).
        assert!(text.contains("# TYPE xlda_serve_completed_total counter"));
        assert!(text.contains("xlda_serve_completed_total 1"));
        assert!(text.contains("xlda_serve_rejected_total 0"));
        // The latency histogram saw exactly the one completed request.
        assert!(text.contains("# TYPE xlda_serve_request_latency_seconds histogram"));
        assert!(text.contains("xlda_serve_request_latency_seconds_count 1"));
        assert!(text.contains("xlda_serve_request_latency_seconds_bucket{le=\"+Inf\"} 1"));
        // Process-wide memo caches ride along, labelled by cache name.
        assert!(text.contains("xlda_memo_cache_hits_total{cache="));
    }

    #[test]
    fn shutdown_drains_queued_work_before_returning() {
        let server = Server::new(ServerConfig {
            batch_window: Duration::from_millis(20),
            ..ServerConfig::default()
        });
        let (w, rx) = test_writer();
        for i in 0..5 {
            server.handle_line(&format!(r#"{{"id":"g{i}","kind":"hdc"}}"#), &w);
        }
        server.handle_line(r#"{"id":"bye","kind":"shutdown"}"#, &w);
        drop(server); // joins the batcher; must not lose admitted work
        let mut answered = std::collections::HashSet::new();
        while let Ok(line) = rx.try_recv() {
            let v = Json::parse(&line).unwrap();
            answered.insert(v.get("id").and_then(Json::as_str).unwrap().to_string());
        }
        for i in 0..5 {
            assert!(answered.contains(&format!("g{i}")), "g{i} dropped");
        }
        assert!(answered.contains("bye"));
    }
}
