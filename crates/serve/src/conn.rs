//! Per-connection state for the event loop: read-side newline framing
//! and a write sink shared with the evaluation workers.
//!
//! **Read side.** [`Conn`] owns the nonblocking stream and a growable
//! read buffer. [`Conn::fill`] appends whatever the socket has;
//! [`Conn::lines`] yields complete frames as `&str` slices borrowed
//! straight from the buffer — framing allocates nothing per request,
//! the JSON parser is handed a view into the connection's bytes. The
//! consumed prefix is compacted once per readiness event, not per line.
//!
//! **Write side.** [`ConnSink`] is the response path. A worker that
//! finishes a job writes *directly* to the socket under the sink's
//! mutex — on an idle socket that is one nonblocking `write(2)` and the
//! response is on the wire without another event-loop hop (which on the
//! 1-core CI box would mean another context switch on the latency
//! path). Only when the kernel buffer is full (partial write or
//! `WouldBlock`) does the remainder spill into the sink's backlog and
//! the loop get woken to register write interest and drain it.
//!
//! A sink outlives its connection slot on purpose: an abrupt disconnect
//! frees the slot immediately, while in-flight jobs keep the `Arc` and
//! their late writes fail silently against the dead fd.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::server::ResponseSink;

pub use crate::server::MAX_FRAME_DEFAULT;

/// Read chunk size per `fill` iteration.
const READ_CHUNK: usize = 16 * 1024;

/// What a readiness-driven read pass produced.
#[derive(Debug, PartialEq, Eq)]
pub enum FillOutcome {
    /// Bytes appended (socket drained or chunk budget reached).
    Progress,
    /// Clean EOF: the peer half-closed; pending responses may still be
    /// written back.
    Eof,
    /// The socket errored (reset, aborted); tear the connection down.
    Broken,
}

/// Read half of one client connection.
pub struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    /// Bytes of `buf` already handed out as frames.
    consumed: usize,
    /// Largest frame accepted before the connection is poisoned.
    max_frame: usize,
    /// Write half, shared with workers evaluating this connection's jobs.
    pub sink: Arc<ConnSink>,
    /// Peer half-closed; close once the sink is idle and flushed.
    pub half_closed: bool,
}

impl Conn {
    /// Wraps an accepted stream (already nonblocking) for token `token`.
    pub fn new(
        stream: TcpStream,
        token: usize,
        max_frame: usize,
        waker: Waker,
    ) -> io::Result<Self> {
        let write_half = stream.try_clone()?;
        Ok(Self {
            stream,
            buf: Vec::with_capacity(4096),
            consumed: 0,
            max_frame,
            sink: Arc::new(ConnSink {
                stream: Mutex::new(write_half),
                backlog: Mutex::new(Vec::new()),
                wants_write: AtomicBool::new(false),
                inflight: AtomicUsize::new(0),
                dead: AtomicBool::new(false),
                token,
                waker,
                loop_thread: std::thread::current().id(),
            }),
            half_closed: false,
        })
    }

    /// Reads until the socket would block (or a chunk budget is spent,
    /// so one firehose client cannot starve the rest of the loop).
    pub fn fill(&mut self) -> FillOutcome {
        let mut chunk = [0u8; READ_CHUNK];
        // 4 chunks ≈ 64 KiB per readiness event; level-triggered polling
        // re-arms anything left unread.
        for _ in 0..4 {
            match self.stream.read(&mut chunk) {
                Ok(0) => return FillOutcome::Eof,
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    if n < chunk.len() {
                        return FillOutcome::Progress;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return FillOutcome::Progress,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return FillOutcome::Broken,
            }
        }
        FillOutcome::Progress
    }

    /// Whether the unframed tail exceeds the frame cap.
    pub fn frame_overflow(&self) -> bool {
        self.buf.len() - self.consumed > self.max_frame
    }

    /// The frame cap this connection enforces.
    pub fn max_frame(&self) -> usize {
        self.max_frame
    }

    /// Yields the next complete frame as a borrowed slice, advancing the
    /// consumed cursor past it. Invalid UTF-8 frames yield `Err(())`.
    pub fn next_line(&mut self) -> Option<Result<&str, ()>> {
        let start = self.consumed;
        let nl = self.buf[start..].iter().position(|&b| b == b'\n')?;
        self.consumed = start + nl + 1;
        let mut frame = &self.buf[start..start + nl];
        if frame.last() == Some(&b'\r') {
            frame = &frame[..frame.len() - 1];
        }
        Some(std::str::from_utf8(frame).map_err(|_| ()))
    }

    /// Drops consumed bytes; call once per readiness event after the
    /// frame loop, so compaction is O(remaining) not O(lines).
    pub fn compact(&mut self) {
        if self.consumed > 0 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
    }

    /// The connection can be dropped: peer gone, no jobs in flight, and
    /// nothing left to flush.
    pub fn drained(&self) -> bool {
        self.half_closed && self.sink.idle()
    }

    /// The read-side fd, for poller registration.
    pub fn fd(&self) -> std::os::unix::io::RawFd {
        use std::os::unix::io::AsRawFd;
        self.stream.as_raw_fd()
    }
}

/// Wake handle into the event loop: one end of a nonblocking
/// `UnixStream` pair the loop polls like any other fd.
#[derive(Clone)]
pub struct Waker(Arc<std::os::unix::net::UnixStream>);

impl Waker {
    /// Wraps the write end (nonblocking).
    pub fn new(stream: std::os::unix::net::UnixStream) -> Self {
        Self(Arc::new(stream))
    }

    /// Wakes the loop. A full pipe means a wake is already pending —
    /// dropping the byte is exactly the coalescing we want.
    pub fn wake(&self) {
        let _ = (&*self.0).write(&[1]);
    }
}

/// Write half of one connection, shared between the event loop and any
/// workers holding this connection's jobs.
pub struct ConnSink {
    stream: Mutex<TcpStream>,
    /// Bytes the socket would not take; drained by the loop on
    /// writability.
    backlog: Mutex<Vec<u8>>,
    /// Backlog is non-empty → the loop must register write interest.
    wants_write: AtomicBool,
    /// Jobs admitted for this connection and not yet responded to.
    inflight: AtomicUsize,
    /// Poisoned: the peer is gone, writes are discarded.
    dead: AtomicBool,
    /// The loop token, so drain completions can be routed.
    pub token: usize,
    waker: Waker,
    /// The event loop's thread (sinks are built during accept). Sends
    /// from this thread — the inline fast path — skip the waker: the
    /// loop's own post-event sweep syncs interest and closes drained
    /// connections, so a self-wake would only add a syscall round.
    loop_thread: std::thread::ThreadId,
}

impl ConnSink {
    /// No jobs in flight and nothing buffered.
    pub fn idle(&self) -> bool {
        self.inflight.load(Ordering::SeqCst) == 0 && !self.wants_write.load(Ordering::SeqCst)
    }

    /// Whether the loop should register write interest.
    pub fn wants_write(&self) -> bool {
        self.wants_write.load(Ordering::SeqCst)
    }

    /// Discards buffered output and poisons future writes.
    pub fn poison(&self) {
        self.dead.store(true, Ordering::SeqCst);
        self.backlog
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        self.wants_write.store(false, Ordering::SeqCst);
    }

    /// Appends `bytes` after the backlog, writing through to the socket
    /// as far as it will go. Returns whether a backlog remains.
    fn write_through(&self, bytes: &[u8]) -> bool {
        if self.dead.load(Ordering::SeqCst) {
            return false;
        }
        // One lock order everywhere: stream, then backlog.
        let mut stream = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        let mut backlog = self.backlog.lock().unwrap_or_else(|e| e.into_inner());
        backlog.extend_from_slice(bytes);
        let mut written = 0;
        while written < backlog.len() {
            match stream.write(&backlog[written..]) {
                Ok(0) => break,
                Ok(n) => written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Dead peer: not a server error; drop the output.
                    backlog.clear();
                    drop(backlog);
                    drop(stream);
                    self.dead.store(true, Ordering::SeqCst);
                    self.wants_write.store(false, Ordering::SeqCst);
                    return false;
                }
            }
        }
        backlog.drain(..written);
        let pending = !backlog.is_empty();
        self.wants_write.store(pending, Ordering::SeqCst);
        pending
    }

    /// Loop-side: drain the backlog after a writability event. Returns
    /// whether write interest is still needed.
    pub fn flush_backlog(&self) -> bool {
        self.write_through(&[])
    }
}

impl ResponseSink for ConnSink {
    fn send(&self, line: &str) {
        let mut framed = Vec::with_capacity(line.len() + 1);
        framed.extend_from_slice(line.as_bytes());
        framed.push(b'\n');
        // The loop must hear about spilled bytes to add write interest.
        if self.write_through(&framed) && std::thread::current().id() != self.loop_thread {
            self.waker.wake();
        }
    }

    fn job_started(&self) {
        self.inflight.fetch_add(1, Ordering::SeqCst);
    }

    fn job_finished(&self) {
        // The last in-flight response on a half-closed connection is
        // what lets the loop close it — wake it to re-check.
        if self.inflight.fetch_sub(1, Ordering::SeqCst) == 1
            && std::thread::current().id() != self.loop_thread
        {
            self.waker.wake();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    fn test_conn(server: TcpStream, max_frame: usize) -> Conn {
        server.set_nonblocking(true).unwrap();
        let (w, _) = std::os::unix::net::UnixStream::pair().unwrap();
        w.set_nonblocking(true).unwrap();
        Conn::new(server, 2, max_frame, Waker::new(w)).unwrap()
    }

    #[test]
    fn frames_split_across_segments_reassemble() {
        let (mut client, server) = pair();
        let mut conn = test_conn(server, MAX_FRAME_DEFAULT);
        for chunk in [
            &b"{\"id\":\"a\""[..],
            &b",\"kind\":\"hd"[..],
            &b"c\"}\r\n{\"x\":1}\n"[..],
        ] {
            client.write_all(chunk).unwrap();
            client.flush().unwrap();
            // Wait for delivery: loopback is fast but not synchronous.
            while !matches!(conn.fill(), FillOutcome::Progress) {}
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        while conn.buf.len() < 25 {
            conn.fill();
        }
        assert_eq!(
            conn.next_line().unwrap().unwrap(),
            r#"{"id":"a","kind":"hdc"}"#
        );
        assert_eq!(conn.next_line().unwrap().unwrap(), r#"{"x":1}"#);
        assert!(conn.next_line().is_none());
        conn.compact();
        assert_eq!(conn.buf.len(), 0);
    }

    #[test]
    fn oversized_frame_detected_before_newline() {
        let (mut client, server) = pair();
        let mut conn = test_conn(server, 64);
        client.write_all(&[b'x'; 200]).unwrap();
        client.flush().unwrap();
        while conn.buf.len() < 100 {
            conn.fill();
        }
        assert!(conn.frame_overflow());
    }

    #[test]
    fn sink_spills_to_backlog_when_kernel_buffer_fills() {
        let (client, server) = pair();
        let conn = test_conn(server, MAX_FRAME_DEFAULT);
        let sink = Arc::clone(&conn.sink);
        // A line far larger than the unread socket buffer must spill.
        let big = "y".repeat(8 * 1024 * 1024);
        sink.send(&big);
        assert!(sink.wants_write(), "8 MiB into an unread socket must spill");
        drop(client);
        // Peer gone: flushing eventually poisons and clears the backlog.
        for _ in 0..200 {
            if !sink.flush_backlog() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(!sink.wants_write());
    }
}
