//! `xlda-serve` binary: the evaluation daemon.
//!
//! ```text
//! xlda-serve --listen 127.0.0.1:7878    # TCP daemon (default)
//! xlda-serve --stdio                    # line protocol on stdio
//! ```
//!
//! Options: `--queue-cap N`, `--batch-window-ms N` (saturation-test
//! knob, default 0), `--batch-max N`, `--threads N`, `--deadline-ms N`
//! (default per-request deadline), `--max-frame BYTES`, `--threaded`
//! (legacy thread-per-connection TCP transport), `--store PATH`
//! (persistent result store; results survive restarts and back the
//! `refine` request kind), `--access-log PATH` (wide-event NDJSON log,
//! one line per request), `--no-flight` / `--flight-cap N` (per-request
//! flight recorder behind the `debug` request kind; see DESIGN.md §15).

use std::net::TcpListener;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;
use xlda_core::store::ResultStore;
use xlda_serve::{AccessLog, Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: xlda-serve [--stdio | --listen ADDR] [--queue-cap N] \
         [--batch-window-ms N] [--batch-max N] [--threads N] [--deadline-ms N] \
         [--max-frame BYTES] [--threaded] [--store PATH] [--access-log PATH] \
         [--no-flight] [--flight-cap N]"
    );
    exit(2);
}

fn parse_num(args: &mut std::vec::IntoIter<String>, flag: &str) -> u64 {
    match args.next().map(|v| v.parse::<u64>()) {
        Some(Ok(n)) => n,
        _ => {
            eprintln!("xlda-serve: {flag} needs a non-negative integer");
            exit(2);
        }
    }
}

fn main() {
    let mut config = ServerConfig::default();
    let mut stdio = false;
    let mut threaded = false;
    let mut store_path: Option<String> = None;
    let mut access_log_path: Option<String> = None;
    let mut listen = "127.0.0.1:7878".to_string();
    let mut args = std::env::args().skip(1).collect::<Vec<_>>().into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stdio" => stdio = true,
            "--listen" => match args.next() {
                Some(a) => listen = a,
                None => usage(),
            },
            "--queue-cap" => config.queue_cap = parse_num(&mut args, "--queue-cap") as usize,
            "--batch-window-ms" => {
                config.batch_window =
                    Duration::from_millis(parse_num(&mut args, "--batch-window-ms"));
            }
            "--batch-max" => {
                config.batch_max = (parse_num(&mut args, "--batch-max") as usize).max(1);
            }
            "--threads" => config.threads = parse_num(&mut args, "--threads") as usize,
            "--deadline-ms" => {
                config.default_deadline =
                    Some(Duration::from_millis(parse_num(&mut args, "--deadline-ms")));
            }
            "--max-frame" => {
                config.max_frame = (parse_num(&mut args, "--max-frame") as usize).max(1);
            }
            "--threaded" => threaded = true,
            "--store" => match args.next() {
                Some(p) => store_path = Some(p),
                None => usage(),
            },
            "--access-log" => match args.next() {
                Some(p) => access_log_path = Some(p),
                None => usage(),
            },
            "--no-flight" => config.flight = false,
            "--flight-cap" => {
                config.flight_cap = (parse_num(&mut args, "--flight-cap") as usize).max(1);
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("xlda-serve: unknown argument {other:?}");
                usage();
            }
        }
    }
    if config.queue_cap == 0 {
        eprintln!("xlda-serve: --queue-cap must be at least 1");
        exit(2);
    }

    let store = store_path.map(|p| match ResultStore::open(&p) {
        Ok(s) => {
            let rep = s.load_report();
            eprintln!(
                "xlda-serve: store {p}: {} records recovered{}{}",
                rep.recovered_records,
                if rep.truncated_bytes > 0 {
                    format!(", {} torn bytes truncated", rep.truncated_bytes)
                } else {
                    String::new()
                },
                if rep.reset {
                    ", reset (incompatible file)"
                } else {
                    ""
                },
            );
            Arc::new(s)
        }
        Err(e) => {
            eprintln!("xlda-serve: cannot open store {p}: {e}");
            exit(1);
        }
    });

    let access_log = access_log_path.map(|p| match AccessLog::to_path(&p) {
        Ok(log) => {
            eprintln!("xlda-serve: access log appending to {p}");
            log
        }
        Err(e) => {
            eprintln!("xlda-serve: cannot open access log {p}: {e}");
            exit(1);
        }
    });

    let server = Server::with_parts(config, store, access_log);
    if stdio {
        server.run_stdio();
        return;
    }
    let listener = match TcpListener::bind(&listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("xlda-serve: cannot bind {listen}: {e}");
            exit(1);
        }
    };
    // The kernel may have picked the port (":0"); report the bound addr.
    if let Ok(addr) = listener.local_addr() {
        eprintln!("xlda-serve: listening on {addr}");
    }
    let result = if threaded {
        server.run_tcp_threaded(listener)
    } else {
        server.run_tcp(listener)
    };
    if let Err(e) = result {
        eprintln!("xlda-serve: transport failed: {e}");
        exit(1);
    }
}
