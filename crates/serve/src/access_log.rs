//! Wide-event NDJSON access log: one line per request, flushed to the
//! sink in batches by a dedicated writer thread.
//!
//! The event loop must never block on — or context-switch for — log
//! I/O. [`AccessLog::log`] appends the line to a mutex-guarded pending
//! buffer and returns: no syscall, no writer wakeup. (An earlier
//! channel-per-line design woke the writer thread for every request;
//! on a single-core box those switches alone blew the 5%
//! `--flight-overhead` budget.) The writer thread wakes on a ~100 ms
//! timer, swaps the whole buffer out under the lock, and writes it as
//! one batch with the lock released. When the buffer is at capacity the
//! line is dropped and counted instead of queued. The written/dropped
//! counters are surfaced in the serve `stats` response, and the writer
//! appends a final `{"type":"access_log_meta",...}` line on shutdown so
//! a truncated log is distinguishable from a complete one.
//!
//! Shutdown is bounded even against a wedged sink (a full disk, a hung
//! pipe): dropping the log signals the writer and waits a short grace
//! period; if the writer is stuck inside a blocking `write`, it is
//! abandoned rather than joined (the integration test in
//! `tests/access_log.rs` pins this).

use std::fmt::Write as FmtWrite;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, SystemTime};
use xlda_obs::flight::{CompletedTrace, STAGES};

/// Default bound on lines pending in the buffer between flushes.
pub const DEFAULT_QUEUE_CAP: usize = 8192;

/// How often the writer thread flushes the pending buffer.
const FLUSH_INTERVAL: Duration = Duration::from_millis(100);

/// Maximum time `Drop` waits for the writer thread to drain and exit.
const SHUTDOWN_GRACE: Duration = Duration::from_millis(500);

/// Lines accumulated since the last flush.
struct Pending {
    buf: String,
    lines: u64,
}

struct Inner {
    pending: Mutex<Pending>,
    /// Signalled on shutdown so the final drain does not wait out a
    /// full flush interval.
    wake: Condvar,
    cap: u64,
    shutdown: AtomicBool,
    written: AtomicU64,
    dropped: AtomicU64,
    finished: AtomicBool,
}

/// A bounded, non-blocking NDJSON access-log sink.
pub struct AccessLog {
    inner: Arc<Inner>,
}

impl AccessLog {
    /// Opens (creating or appending) the log file at `path`.
    pub fn to_path(path: &str) -> io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Self::with_writer(Box::new(file), DEFAULT_QUEUE_CAP))
    }

    /// Builds a log over an arbitrary sink with a custom pending-line
    /// bound. Batches reach the sink every [`FLUSH_INTERVAL`] and at
    /// shutdown.
    pub fn with_writer(mut sink: Box<dyn Write + Send>, queue_cap: usize) -> Self {
        let inner = Arc::new(Inner {
            pending: Mutex::new(Pending {
                buf: String::new(),
                lines: 0,
            }),
            wake: Condvar::new(),
            cap: queue_cap.max(1) as u64,
            shutdown: AtomicBool::new(false),
            written: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            finished: AtomicBool::new(false),
        });
        let i = Arc::clone(&inner);
        std::thread::Builder::new()
            .name("xlda-access-log".into())
            .spawn(move || {
                loop {
                    let stop = i.shutdown.load(Ordering::Acquire);
                    let (batch, lines) = {
                        let mut p = i.pending.lock().unwrap();
                        if p.lines == 0 && !stop {
                            p = i.wake.wait_timeout(p, FLUSH_INTERVAL).unwrap().0;
                        }
                        (std::mem::take(&mut p.buf), std::mem::take(&mut p.lines))
                    };
                    // The lock is released: a wedged write stalls only
                    // this thread, never a worker appending lines.
                    if lines > 0 {
                        if sink
                            .write_all(batch.as_bytes())
                            .and_then(|()| sink.flush())
                            .is_ok()
                        {
                            i.written.fetch_add(lines, Ordering::Relaxed);
                        } else {
                            i.dropped.fetch_add(lines, Ordering::Relaxed);
                        }
                    }
                    if stop {
                        break;
                    }
                }
                let _ = writeln!(
                    sink,
                    "{{\"type\":\"access_log_meta\",\"written\":{},\"dropped\":{}}}",
                    i.written.load(Ordering::Relaxed),
                    i.dropped.load(Ordering::Relaxed)
                );
                let _ = sink.flush();
                i.finished.store(true, Ordering::Release);
            })
            .expect("spawn access-log writer");
        AccessLog { inner }
    }

    /// Queues one NDJSON line (without trailing newline). Never blocks
    /// and never wakes the writer: a buffer at capacity drops the line
    /// and bumps the counter.
    pub fn log(&self, line: String) {
        let mut p = self.inner.pending.lock().unwrap();
        if p.lines >= self.inner.cap {
            drop(p);
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        p.buf.push_str(&line);
        p.buf.push('\n');
        p.lines += 1;
    }

    /// Lines durably handed to the sink so far.
    pub fn written(&self) -> u64 {
        self.inner.written.load(Ordering::Relaxed)
    }

    /// Lines dropped (buffer full or sink write error) so far.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }
}

impl Drop for AccessLog {
    fn drop(&mut self) {
        // Signal the writer to drain and exit; wait a bounded grace
        // period so a wedged sink cannot hang shutdown.
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.wake.notify_all();
        let deadline = std::time::Instant::now() + SHUTDOWN_GRACE;
        while !self.inner.finished.load(Ordering::Acquire) {
            if std::time::Instant::now() >= deadline {
                break; // abandon the wedged writer thread
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

/// Milliseconds since the Unix epoch (wall clock, for log correlation).
fn epoch_ms() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Writes the shared line prefix: timestamp, identity, outcome.
fn push_prefix(s: &mut String, id: &str, kind: &str, outcome: &str, ok: bool) {
    let _ = write!(s, "{{\"ts_ms\":{}", epoch_ms());
    s.push_str(",\"id\":");
    xlda_obs::export::push_json_str(s, id);
    s.push_str(",\"kind\":");
    xlda_obs::export::push_json_str(s, kind);
    s.push_str(",\"outcome\":");
    xlda_obs::export::push_json_str(s, outcome);
    let _ = write!(s, ",\"ok\":{ok}");
}

/// The wide-event line for a completed, traced request: identity, outcome,
/// total latency, the telescoping per-stage breakdown, point counts, and
/// cache attribution.
///
/// Built by direct string pushes of integer fields, not via a
/// [`crate::json::Json`] tree: this runs on the worker thread for every
/// request, and on a small box the allocation + float-formatting cost of
/// the tree was the biggest line item in the `--flight-overhead` gate.
/// Durations are integral nanoseconds — exact, and integers format an
/// order of magnitude faster than shortest-round-trip floats.
pub fn request_line(t: &CompletedTrace) -> String {
    let mut s = String::with_capacity(256);
    push_prefix(&mut s, &t.id, t.kind, t.outcome, t.is_ok());
    let _ = write!(s, ",\"total_ns\":{}", t.total_ns);
    s.push_str(",\"stages_ns\":{");
    for (i, (name, ns)) in STAGES.iter().zip(t.stage_ns.iter()).enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{name}\":{ns}");
    }
    let _ = write!(
        s,
        "}},\"points\":{},\"memo_hits\":{},\"memo_misses\":{},\"store_hits\":{}}}",
        t.points, t.memo_hits, t.memo_misses, t.store_hits
    );
    s
}

/// The minimal line for untraced requests (stats/metrics/debug/shutdown,
/// parse failures, queue rejections).
pub fn simple_line(id: &str, kind: &str, outcome: &str) -> String {
    let mut s = String::with_capacity(96);
    push_prefix(&mut s, id, kind, outcome, outcome == "ok");
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// A sink that collects complete lines behind a shared mutex.
    struct Collect(Arc<Mutex<Vec<u8>>>);

    impl Write for Collect {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn lines_reach_the_sink_and_meta_footer_closes_it() {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let log = AccessLog::with_writer(Box::new(Collect(Arc::clone(&buf))), 64);
        log.log(simple_line("r1", "stats", "ok"));
        log.log(simple_line("r2", "nope", "bad_request"));
        drop(log);
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "2 events + meta footer: {text}");
        assert!(lines[0].contains("\"id\":\"r1\""));
        assert!(lines[1].contains("\"outcome\":\"bad_request\""));
        assert!(lines[1].contains("\"ok\":false"));
        assert_eq!(
            lines[2],
            "{\"type\":\"access_log_meta\",\"written\":2,\"dropped\":0}"
        );
    }

    #[test]
    fn wedged_sink_drops_lines_and_shutdown_stays_bounded() {
        struct Wedged;
        impl Write for Wedged {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                std::thread::sleep(Duration::from_secs(3600));
                unreachable!("test process exits first")
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let log = AccessLog::with_writer(Box::new(Wedged), 2);
        let start = std::time::Instant::now();
        // One line, then wait past the flush interval: the writer takes
        // the batch and blocks inside the wedged sink.
        log.log(simple_line("wedge", "hdc", "ok"));
        std::thread::sleep(Duration::from_millis(250));
        for i in 0..20 {
            log.log(simple_line(&format!("r{i}"), "hdc", "ok"));
        }
        // 20 appends against a capacity-2 buffer that will never be
        // flushed again: 2 buffered, the rest drop.
        assert!(log.dropped() >= 18, "dropped {}", log.dropped());
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "log() must never block on a wedged sink"
        );
        drop(log);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "shutdown must abandon a wedged writer"
        );
    }

    #[test]
    fn request_line_is_a_complete_wide_event() {
        let t = CompletedTrace {
            id: "q7".into(),
            kind: "hdc",
            outcome: "ok",
            total_ns: 1_500_000,
            stage_ns: [100_000, 200_000, 0, 1_000_000, 200_000],
            points: 9,
            memo_hits: 4,
            memo_misses: 2,
            store_hits: 1,
        };
        let line = request_line(&t);
        for needle in [
            "\"id\":\"q7\"",
            "\"kind\":\"hdc\"",
            "\"ok\":true",
            "\"total_ns\":1500000",
            "\"stages_ns\":{\"decode\":100000,",
            "\"eval\":1000000,",
            "\"points\":9",
            "\"memo_hits\":4",
            "\"store_hits\":1",
        ] {
            assert!(line.contains(needle), "missing {needle} in {line}");
        }
        assert!(!line.contains('\n'));
        // The emitted line parses back as one JSON object.
        let v = crate::json::Json::parse(&line).expect("valid JSON");
        assert_eq!(
            v.get("stages_ns")
                .and_then(|s| s.get("eval"))
                .and_then(crate::json::Json::as_f64),
            Some(1_000_000.0)
        );
    }
}
