//! `xlda-serve` — a batched evaluation service over the unified
//! [`Scenario`](xlda_core::evaluate::Scenario) API.
//!
//! The ROADMAP's north star is a system that serves sustained
//! evaluation traffic rather than one-shot library calls. This crate
//! puts a long-lived daemon in front of the sweep engine: requests
//! arrive as newline-delimited JSON (TCP, or stdio for tests), pass a
//! bounded admission queue with explicit backpressure, coalesce in a
//! micro-batch window, and evaluate as one sweep submission on a
//! shared worker pool with process-wide warm memo caches.
//!
//! Layout:
//!
//! - [`json`] — hand-rolled JSON (the vendored `serde` is a no-op
//!   shim), with bit-exact `f64` round-tripping;
//! - [`protocol`] — request parsing and response formatting;
//! - [`server`] — queue → batcher → pool → drain pipeline and the two
//!   transports.
//!
//! See DESIGN.md §9 for the architecture and wire schema, and
//! `xlda-bench --loadgen` for the serving benchmark that produces
//! `BENCH_serve.json`.

pub mod json;
pub mod protocol;
pub mod server;

pub use server::{Server, ServerConfig, SharedWriter};
