//! `xlda-serve` — a batched evaluation service over the unified
//! [`Scenario`](xlda_core::evaluate::Scenario) API.
//!
//! The ROADMAP's north star is a system that serves sustained
//! evaluation traffic rather than one-shot library calls. This crate
//! puts a long-lived daemon in front of the sweep engine: requests
//! arrive as newline-delimited JSON (TCP, or stdio for tests), pass a
//! bounded admission queue with explicit backpressure, coalesce in a
//! micro-batch window, and evaluate as one sweep submission on a
//! shared worker pool with process-wide warm memo caches.
//!
//! Layout:
//!
//! - [`json`] — hand-rolled JSON (the vendored `serde` is a no-op
//!   shim), with bit-exact `f64` round-tripping;
//! - [`protocol`] — request parsing and response formatting;
//! - [`server`] — queue → adaptive batcher → pool → drain pipeline and
//!   the transports;
//! - [`access_log`] — the wide-event NDJSON access log: one line per
//!   request through a bounded writer that drops-and-counts instead of
//!   ever blocking the event loop;
//! - [`poll`] / [`conn`] / `event_loop` (unix) — the readiness-driven
//!   TCP transport: hand-rolled epoll/poll, zero-copy framing, direct
//!   worker-to-socket writes.
//!
//! Per-request observability (the `xlda_obs::flight` recorder, the
//! `debug` request kind, latency exemplars) is described in DESIGN.md
//! §15. See DESIGN.md §9 (pipeline, wire schema) and §11 (event loop),
//! and `xlda-bench --loadgen` for the serving benchmark that produces
//! `BENCH_serve.json`.

pub mod access_log;
pub mod json;
pub mod protocol;
pub mod server;

#[cfg(unix)]
pub mod conn;
#[cfg(unix)]
pub(crate) mod event_loop;
#[cfg(unix)]
pub mod poll;

pub use access_log::AccessLog;
pub use server::{ResponseSink, Server, ServerConfig, SharedWriter};
