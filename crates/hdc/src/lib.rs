//! Hyperdimensional computing case study (paper Sec. III, Fig. 3).
//!
//! HDC encodes inputs into high-dimensional hypervectors (HVs), learns a
//! class HV per label by bundling, and classifies queries by associative
//! search over the learned HVs. This crate implements the full software
//! model plus its FeFET-CAM hardware mapping:
//!
//! - [`encode`] — random-projection and ID-level encoders, plus HV
//!   element quantization (the Fig. 3C precision axis);
//! - [`model`] — training (bundle + retraining passes) and software
//!   classification under cosine/Hamming/squared-Euclidean distances;
//! - [`cam`] — the multi-bit FeFET CAM associative memory: words
//!   partitioned across subarrays with per-subarray winner voting
//!   (the Fig. 3F aggregation-error mechanism) and V_th programming
//!   variation injection (Fig. 3G);
//! - [`profile`] — operation counts for the encode and search stages,
//!   feeding the runtime-breakdown and platform-comparison experiments
//!   (Figs. 3E, 3H);
//! - [`codesign`] — iso-accuracy hypervector sizing, automating the
//!   Fig. 3H software/hardware co-design step.
//!
//! # Examples
//!
//! ```
//! use xlda_datagen::ClassificationSpec;
//! use xlda_hdc::encode::{Encoder, EncoderConfig};
//! use xlda_hdc::model::HdcModel;
//!
//! let data = ClassificationSpec::emg_like().generate();
//! let encoder = Encoder::new(&EncoderConfig {
//!     dim_in: data.dim(),
//!     hv_dim: 1024,
//!     ..EncoderConfig::default()
//! });
//! let model = HdcModel::train(&encoder, &data, 3, 2);
//! assert!(model.accuracy(&data) > 0.7);
//! ```

pub mod cam;
pub mod codesign;
pub mod encode;
pub mod model;
pub mod profile;
