//! Software/hardware co-design: iso-accuracy hypervector sizing.
//!
//! The Fig. 3H comparison hinges on *iso-accuracy sizing*: each cell
//! precision is charged the HV length it needs to match the software
//! reference ("2-bit designs only achieve iso-accuracy with larger HVs,
//! and 1-bit HVs ... cannot achieve iso-accuracy"). This module automates
//! that search: given a dataset and a precision, find the smallest HV
//! dimension whose accuracy reaches a target, or report that no dimension
//! in range does.

use crate::encode::{Encoder, EncoderConfig};
use crate::model::{Distance, HdcModel};
use xlda_datagen::Dataset;

/// Result of the iso-accuracy search for one precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizingResult {
    /// Element precision searched.
    pub bits: u8,
    /// Smallest dimension reaching the target, if any.
    pub hv_dim: Option<usize>,
    /// Accuracy at `hv_dim` (or at the largest dimension tried).
    pub accuracy: f64,
}

/// Search settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizingConfig {
    /// Smallest dimension tried.
    pub min_dim: usize,
    /// Largest dimension tried (the "memory capacity" budget the paper
    /// warns aggregation compensation inflates).
    pub max_dim: usize,
    /// Retraining passes per candidate model.
    pub retrain_passes: usize,
    /// Encoder seed.
    pub seed: u64,
}

impl Default for SizingConfig {
    /// 256..=8192, 1 retraining pass.
    fn default() -> Self {
        Self {
            min_dim: 256,
            max_dim: 8192,
            retrain_passes: 1,
            seed: 0xc0de,
        }
    }
}

fn accuracy_at(data: &Dataset, bits: u8, hv_dim: usize, config: &SizingConfig) -> f64 {
    let encoder = Encoder::new(&EncoderConfig {
        dim_in: data.dim(),
        hv_dim,
        seed: config.seed,
        ..EncoderConfig::default()
    });
    let model = HdcModel::train(&encoder, data, bits, config.retrain_passes);
    model.accuracy_with(&encoder, data, Distance::Cosine)
}

/// Finds the smallest HV dimension (doubling from `min_dim` to `max_dim`)
/// whose accuracy reaches `target`.
///
/// Accuracy is monotone in dimension only statistically, so the search
/// walks the doubling ladder rather than bisecting: the first rung at or
/// above the target wins.
///
/// # Panics
///
/// Panics if `min_dim` is zero or exceeds `max_dim`.
pub fn size_for_accuracy(
    data: &Dataset,
    bits: u8,
    target: f64,
    config: &SizingConfig,
) -> SizingResult {
    assert!(
        config.min_dim > 0 && config.min_dim <= config.max_dim,
        "bad dimension range"
    );
    let mut dim = config.min_dim;
    let mut last_acc = 0.0;
    while dim <= config.max_dim {
        last_acc = accuracy_at(data, bits, dim, config);
        if last_acc >= target {
            return SizingResult {
                bits,
                hv_dim: Some(dim),
                accuracy: last_acc,
            };
        }
        dim *= 2;
    }
    SizingResult {
        bits,
        hv_dim: None,
        accuracy: last_acc,
    }
}

/// Runs the sizing search for each precision against a software
/// full-precision reference at `reference_dim`, returning
/// `(reference accuracy, per-precision results)`.
///
/// `tolerance` is subtracted from the reference to form the iso-accuracy
/// target (the paper's "3-to-4 bit ... can be sufficient to match" is a
/// within-tolerance statement).
pub fn iso_accuracy_table(
    data: &Dataset,
    precisions: &[u8],
    reference_dim: usize,
    tolerance: f64,
    config: &SizingConfig,
) -> (f64, Vec<SizingResult>) {
    let reference = accuracy_at(data, 32, reference_dim, config);
    let target = reference - tolerance;
    let results = precisions
        .iter()
        .map(|&bits| size_for_accuracy(data, bits, target, config))
        .collect();
    (reference, results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlda_datagen::ClassificationSpec;

    fn hard_data() -> Dataset {
        let mut spec = ClassificationSpec::isolet_like();
        spec.noise = 4.0;
        spec.train_per_class = 20;
        spec.test_per_class = 8;
        spec.generate()
    }

    fn quick_config() -> SizingConfig {
        SizingConfig {
            min_dim: 256,
            max_dim: 2048,
            ..SizingConfig::default()
        }
    }

    #[test]
    fn three_bit_sizes_within_budget_one_bit_does_not() {
        // The Fig. 3H sizing story, automated.
        let data = hard_data();
        let cfg = quick_config();
        let (reference, results) = iso_accuracy_table(&data, &[1, 3], 2048, 0.05, &cfg);
        assert!(reference > 0.8, "reference {reference}");
        let r1 = results[0];
        let r3 = results[1];
        assert!(
            r3.hv_dim.is_some(),
            "3-bit should reach iso-accuracy: {r3:?}"
        );
        assert!(
            r1.hv_dim.is_none() || r1.hv_dim.unwrap() > r3.hv_dim.unwrap(),
            "1-bit must need more (or unbounded) dimensions: {r1:?} vs {r3:?}"
        );
    }

    #[test]
    fn looser_targets_need_fewer_dimensions() {
        let data = hard_data();
        let cfg = quick_config();
        let strict = size_for_accuracy(&data, 3, 0.90, &cfg);
        let loose = size_for_accuracy(&data, 3, 0.70, &cfg);
        let s = strict.hv_dim.unwrap_or(usize::MAX);
        let l = loose.hv_dim.unwrap_or(usize::MAX);
        assert!(l <= s, "loose {l} strict {s}");
    }

    #[test]
    fn impossible_target_reports_none_with_best_accuracy() {
        let data = hard_data();
        let cfg = SizingConfig {
            min_dim: 256,
            max_dim: 512,
            ..SizingConfig::default()
        };
        let r = size_for_accuracy(&data, 1, 0.999, &cfg);
        assert_eq!(r.hv_dim, None);
        assert!(r.accuracy > 0.0 && r.accuracy < 0.999);
    }
}
