//! Operation-count profiles of the HDC pipeline.
//!
//! Amdahl's-law analysis (Fig. 3E) needs the computational composition of
//! the end-to-end workload: how much work is encoding (an MVM) versus
//! associative search (a scan over stored class HVs). These counts feed
//! the platform models in `xlda-baseline` to produce runtime breakdowns
//! and the Fig. 3H platform comparison.

/// Operation counts for one HDC inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HdcProfile {
    /// Input feature dimensionality.
    pub dim_in: usize,
    /// Hypervector dimensionality.
    pub hv_dim: usize,
    /// Number of stored class HVs.
    pub classes: usize,
    /// Element precision in bits.
    pub bits: u8,
}

impl HdcProfile {
    /// Multiply-accumulate operations in the encoding MVM.
    pub fn encode_macs(&self) -> u64 {
        (self.dim_in as u64) * (self.hv_dim as u64)
    }

    /// Elementwise compare/accumulate operations in the search stage.
    pub fn search_ops(&self) -> u64 {
        (self.classes as u64) * (self.hv_dim as u64)
    }

    /// Bytes of stored class-HV data the search stage must stream.
    pub fn search_bytes(&self) -> u64 {
        let bytes_per_elem = (self.bits as u64).div_ceil(8).max(1);
        self.search_ops() * bytes_per_elem
    }

    /// Bytes of projection-matrix data the encode stage must stream.
    pub fn encode_bytes(&self) -> u64 {
        // Bipolar projection: 1 bit per element, packed.
        self.encode_macs() / 8
    }

    /// Fraction of total operations spent in search.
    pub fn search_op_fraction(&self) -> f64 {
        let s = self.search_ops() as f64;
        s / (s + self.encode_macs() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> HdcProfile {
        HdcProfile {
            dim_in: 617,
            hv_dim: 4096,
            classes: 26,
            bits: 3,
        }
    }

    #[test]
    fn op_counts() {
        let p = profile();
        assert_eq!(p.encode_macs(), 617 * 4096);
        assert_eq!(p.search_ops(), 26 * 4096);
        assert_eq!(p.search_bytes(), 26 * 4096);
    }

    #[test]
    fn more_classes_raise_search_fraction() {
        let few = HdcProfile {
            classes: 5,
            ..profile()
        };
        let many = HdcProfile {
            classes: 100,
            ..profile()
        };
        assert!(many.search_op_fraction() > few.search_op_fraction());
    }

    #[test]
    fn bytes_scale_with_precision() {
        let b3 = profile();
        let b16 = HdcProfile { bits: 16, ..b3 };
        assert!(b16.search_bytes() > b3.search_bytes());
    }
}
