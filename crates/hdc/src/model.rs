//! HDC training and software classification.

use crate::encode::{quantize_hv, Encoder};
use xlda_datagen::Dataset;
use xlda_num::matrix::{cosine_similarity, squared_euclidean, Matrix};

/// Distance used for associative search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distance {
    /// Cosine similarity (the common GPU/software choice).
    Cosine,
    /// Hamming distance on signs (binary CAM semantics).
    Hamming,
    /// Squared Euclidean (what the multi-bit FeFET CAM computes in
    /// analog, Fig. 3D) — a proxy for Euclidean distance.
    SquaredEuclidean,
}

/// A trained HDC classifier: one quantized class HV per label.
#[derive(Debug, Clone)]
pub struct HdcModel {
    class_hvs: Matrix,
    bits: u8,
}

impl HdcModel {
    /// Trains by bundling encoded training samples per class, followed by
    /// `retrain_passes` perceptron-style correction passes, then
    /// quantizing class HVs to `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or `bits == 0`.
    pub fn train(encoder: &Encoder, data: &Dataset, bits: u8, retrain_passes: usize) -> Self {
        assert!(bits > 0, "bits must be positive");
        assert!(!data.train_labels.is_empty(), "empty training set");
        let d = encoder.hv_dim();
        let mut class_acc = Matrix::zeros(data.classes, d);
        let encoded: Vec<Vec<f64>> = (0..data.train.rows())
            .map(|i| encoder.encode(data.train.row(i)))
            .collect();
        for (i, &c) in data.train_labels.iter().enumerate() {
            for (slot, &v) in class_acc.row_mut(c).iter_mut().zip(&encoded[i]) {
                *slot += v;
            }
        }
        // Retraining: misclassified samples are added to the true class
        // and subtracted from the predicted one.
        for _ in 0..retrain_passes {
            let snapshot = Self::finalize(&class_acc, bits);
            for (i, &c) in data.train_labels.iter().enumerate() {
                let pred = snapshot.classify_hv(&quantize_hv(&encoded[i], bits), Distance::Cosine);
                if pred != c {
                    for (slot, &v) in class_acc.row_mut(c).iter_mut().zip(&encoded[i]) {
                        *slot += v;
                    }
                    for (slot, &v) in class_acc.row_mut(pred).iter_mut().zip(&encoded[i]) {
                        *slot -= v;
                    }
                }
            }
        }
        Self::finalize(&class_acc, bits)
    }

    fn finalize(class_acc: &Matrix, bits: u8) -> Self {
        // Equalize class-HV L2 norms before quantizing with a *shared*
        // scale: squared-Euclidean search (the CAM's native distance)
        // only ranks like cosine when stored vectors have equal norms.
        let unit_rows: Vec<Vec<f64>> = (0..class_acc.rows())
            .map(|c| {
                let row = class_acc.row(c);
                let n = xlda_num::matrix::norm(row).max(1e-12);
                row.iter().map(|&v| v / n).collect()
            })
            .collect();
        let gmax = unit_rows
            .iter()
            .flat_map(|r| r.iter())
            .fold(0.0f64, |a, &v| a.max(v.abs()))
            .max(1e-12);
        let mut class_hvs = Matrix::zeros(class_acc.rows(), class_acc.cols());
        for (c, row) in unit_rows.iter().enumerate() {
            let scaled: Vec<f64> = row.iter().map(|&v| v / gmax).collect();
            class_hvs
                .row_mut(c)
                .copy_from_slice(&quantize_hv(&scaled, bits));
        }
        Self { class_hvs, bits }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.class_hvs.rows()
    }

    /// Hypervector dimensionality.
    pub fn hv_dim(&self) -> usize {
        self.class_hvs.cols()
    }

    /// Element precision of the stored class HVs.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// The stored class hypervectors (one row per class).
    pub fn class_hvs(&self) -> &Matrix {
        &self.class_hvs
    }

    /// Classifies an already-encoded, quantized hypervector.
    pub fn classify_hv(&self, hv: &[f64], distance: Distance) -> usize {
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for c in 0..self.classes() {
            let stored = self.class_hvs.row(c);
            let score = match distance {
                Distance::Cosine => cosine_similarity(hv, stored),
                Distance::Hamming => {
                    -(hv.iter()
                        .zip(stored)
                        .filter(|(&a, &b)| (a >= 0.0) != (b >= 0.0))
                        .count() as f64)
                }
                Distance::SquaredEuclidean => -squared_euclidean(hv, stored),
            };
            if score > best_score {
                best_score = score;
                best = c;
            }
        }
        best
    }

    /// Encodes, quantizes, and classifies a raw feature vector.
    pub fn classify(&self, encoder: &Encoder, x: &[f64], distance: Distance) -> usize {
        let hv = quantize_hv(&encoder.encode(x), self.bits);
        self.classify_hv(&hv, distance)
    }

    /// Test-set accuracy with the given distance. The encoder must be the
    /// one used at training time.
    pub fn accuracy_with(&self, encoder: &Encoder, data: &Dataset, distance: Distance) -> f64 {
        let mut correct = 0usize;
        for (i, &label) in data.test_labels.iter().enumerate() {
            if self.classify(encoder, data.test.row(i), distance) == label {
                correct += 1;
            }
        }
        correct as f64 / data.test_labels.len() as f64
    }

    /// Test-set accuracy with cosine distance (the software default).
    ///
    /// Note: the encoder is rebuilt deterministically from the stored
    /// dimensions, so this convenience method requires the caller to pass
    /// the dataset only.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        // The encoder cannot be reconstructed from the model alone; this
        // convenience path re-derives it from the default seed and the
        // dataset dimensionality, matching `Encoder::new` defaults used in
        // examples. For full control use `accuracy_with`.
        let encoder = Encoder::new(&crate::encode::EncoderConfig {
            dim_in: data.dim(),
            hv_dim: self.hv_dim(),
            ..crate::encode::EncoderConfig::default()
        });
        self.accuracy_with(&encoder, data, Distance::Cosine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::EncoderConfig;
    use xlda_datagen::ClassificationSpec;

    fn setup(hv_dim: usize, bits: u8) -> (Encoder, HdcModel, xlda_datagen::Dataset) {
        let data = ClassificationSpec::emg_like().generate();
        let encoder = Encoder::new(&EncoderConfig {
            dim_in: data.dim(),
            hv_dim,
            ..EncoderConfig::default()
        });
        let model = HdcModel::train(&encoder, &data, bits, 2);
        (encoder, model, data)
    }

    #[test]
    fn model_learns_the_easy_dataset() {
        let (encoder, model, data) = setup(2048, 3);
        let acc = model.accuracy_with(&encoder, &data, Distance::Cosine);
        assert!(acc > 0.9, "accuracy {acc}");
        assert_eq!(model.classes(), 5);
        assert_eq!(model.hv_dim(), 2048);
    }

    #[test]
    fn higher_precision_never_much_worse() {
        let data = ClassificationSpec::isolet_like().generate();
        let encoder = Encoder::new(&EncoderConfig {
            dim_in: data.dim(),
            hv_dim: 2048,
            ..EncoderConfig::default()
        });
        let acc_of = |bits: u8| {
            HdcModel::train(&encoder, &data, bits, 1).accuracy_with(
                &encoder,
                &data,
                Distance::Cosine,
            )
        };
        let a1 = acc_of(1);
        let a3 = acc_of(3);
        let a32 = acc_of(32);
        // Fig. 3C shape: 3-bit is iso-accurate with full precision;
        // 1-bit is no better than 3-bit.
        assert!(a3 >= a32 - 0.03, "a3 {a3} a32 {a32}");
        assert!(a1 <= a3 + 0.02, "a1 {a1} a3 {a3}");
    }

    #[test]
    fn distances_agree_on_easy_data() {
        let (encoder, model, data) = setup(2048, 3);
        let cos = model.accuracy_with(&encoder, &data, Distance::Cosine);
        let se = model.accuracy_with(&encoder, &data, Distance::SquaredEuclidean);
        // SE distance is the CAM's native function and should track
        // cosine closely on normalized HVs (the paper's proxy argument).
        assert!((cos - se).abs() < 0.05, "cos {cos} se {se}");
    }

    #[test]
    fn longer_hvs_help_binary_models() {
        let data = ClassificationSpec::isolet_like().generate();
        let acc_at = |hv_dim: usize| {
            let encoder = Encoder::new(&EncoderConfig {
                dim_in: data.dim(),
                hv_dim,
                ..EncoderConfig::default()
            });
            HdcModel::train(&encoder, &data, 1, 1).accuracy_with(&encoder, &data, Distance::Hamming)
        };
        let short = acc_at(256);
        let long = acc_at(4096);
        assert!(long >= short, "short {short} long {long}");
    }

    #[test]
    fn retraining_does_not_hurt() {
        let data = ClassificationSpec::ucihar_like().generate();
        let encoder = Encoder::new(&EncoderConfig {
            dim_in: data.dim(),
            hv_dim: 1024,
            ..EncoderConfig::default()
        });
        let plain =
            HdcModel::train(&encoder, &data, 2, 0).accuracy_with(&encoder, &data, Distance::Cosine);
        let retrained =
            HdcModel::train(&encoder, &data, 2, 3).accuracy_with(&encoder, &data, Distance::Cosine);
        assert!(
            retrained >= plain - 0.02,
            "plain {plain} retrained {retrained}"
        );
    }
}
