//! FeFET multi-bit CAM associative memory for HDC search.
//!
//! Class hypervectors are stored as CAM levels in multi-bit FeFET cells;
//! a query is compared against every stored word in analog, with each
//! cell contributing a squared-Euclidean term through the quadratic
//! conductance law (Fig. 3D). Because peripheral circuitry cannot sense
//! thousand-cell matchlines, words are partitioned across subarrays and
//! per-subarray winners are *voted* — the aggregation-error mechanism of
//! Fig. 3F. Cell programming variation (Fig. 3G) is injected through the
//! device model's V_th spread.

use crate::encode::{element_to_level, quantize_hv, Encoder};
use crate::model::HdcModel;
use xlda_datagen::Dataset;
use xlda_device::fefet::Fefet;
use xlda_num::rng::Rng64;

/// How per-subarray results combine into a final match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Aggregation {
    /// Each subarray votes for its best-matching word; most votes wins
    /// (the scheme whose failure mode Fig. 3F-i illustrates).
    SubarrayVote,
    /// Per-subarray distances are digitized (saturating at the sensing
    /// resolution) and summed — costlier peripherals, fewer aggregation
    /// errors.
    DistanceSum {
        /// Largest distinguishable distance per subarray; larger analog
        /// distances saturate to this value. `None` means unquantized.
        resolution: Option<usize>,
    },
}

/// CAM search configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CamSearchConfig {
    /// Bits stored per CAM cell (1..=3 for FeFET).
    pub bits_per_cell: u8,
    /// Cells per subarray matchline.
    pub subarray_cols: usize,
    /// FeFET device (its `sigma_vth` sets programming variation; use
    /// [`Fefet::with_sigma`] to sweep Fig. 3G).
    pub device: Fefet,
    /// Aggregation scheme across subarrays.
    pub aggregation: Aggregation,
    /// Program-and-verify tolerance (V): `Some(t)` re-programs cells
    /// until within `t` of the target (closed-loop MLC writing);
    /// `None` writes single-shot.
    pub verify_tolerance: Option<f64>,
}

impl Default for CamSearchConfig {
    /// 3-bit cells, 64-cell subarrays, silicon FeFET, subarray voting.
    fn default() -> Self {
        Self {
            bits_per_cell: 3,
            subarray_cols: 64,
            device: Fefet::silicon(),
            aggregation: Aggregation::SubarrayVote,
            verify_tolerance: None,
        }
    }
}

/// A CAM-mapped associative memory holding one word per class.
#[derive(Debug, Clone)]
pub struct CamAm {
    config: CamSearchConfig,
    /// Stored analog V_th per class per cell (programming error applied).
    stored_vth: Vec<Vec<f64>>,
    /// Cells per word.
    cells_per_word: usize,
}

impl CamAm {
    /// Programs the model's class HVs into CAM cells.
    ///
    /// Each HV element becomes one multi-bit cell level, programmed with
    /// the device's Gaussian V_th spread.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_cell` is outside `1..=3` or `subarray_cols`
    /// is zero.
    pub fn program(model: &HdcModel, config: &CamSearchConfig, rng: &mut Rng64) -> Self {
        assert!(
            (1..=3).contains(&config.bits_per_cell),
            "FeFET cells store 1..=3 bits"
        );
        assert!(config.subarray_cols > 0, "subarray must have cells");
        let mlc = config.device.mlc(config.bits_per_cell);
        let cells_per_word = model.hv_dim();
        let stored_vth = (0..model.classes())
            .map(|c| {
                let hv = quantize_hv(model.class_hvs().row(c), config.bits_per_cell);
                hv.iter()
                    .map(|&v| {
                        let lvl = element_to_level(v, config.bits_per_cell);
                        match config.verify_tolerance {
                            Some(tol) => mlc.program_verified(lvl, tol, 8, rng),
                            None => mlc.program(lvl, rng),
                        }
                    })
                    .collect()
            })
            .collect();
        Self {
            config: config.clone(),
            stored_vth,
            cells_per_word,
        }
    }

    /// Number of stored words (classes).
    pub fn words(&self) -> usize {
        self.stored_vth.len()
    }

    /// Number of subarray segments each word spans.
    pub fn segments(&self) -> usize {
        self.cells_per_word.div_ceil(self.config.subarray_cols)
    }

    /// Analog squared-distance contribution of one segment of one word
    /// against the query voltages.
    fn segment_distance(&self, word: usize, seg: usize, query_v: &[f64]) -> f64 {
        let lo = seg * self.config.subarray_cols;
        let hi = (lo + self.config.subarray_cols).min(self.cells_per_word);
        let stored = &self.stored_vth[word];
        let mut current = 0.0;
        for i in lo..hi {
            // Matchline current through the quadratic cell law.
            current += self
                .config
                .device
                .cam_cell_conductance(query_v[i] - stored[i]);
        }
        current
    }

    /// Searches the CAM for the best-matching word for a quantized query
    /// hypervector.
    ///
    /// # Panics
    ///
    /// Panics if the query length differs from the stored word length.
    pub fn search(&self, query_hv: &[f64]) -> usize {
        assert_eq!(query_hv.len(), self.cells_per_word, "query length mismatch");
        // Map query elements to the same V_th grid (drivers are exact).
        let mlc = self.config.device.mlc(self.config.bits_per_cell);
        let query_v: Vec<f64> = query_hv
            .iter()
            .map(|&v| mlc.level_target(element_to_level(v, self.config.bits_per_cell)))
            .collect();
        let segments = self.segments();
        match self.config.aggregation {
            Aggregation::SubarrayVote => {
                let mut votes = vec![0usize; self.words()];
                for seg in 0..segments {
                    let mut best = 0usize;
                    let mut best_d = f64::INFINITY;
                    for w in 0..self.words() {
                        let d = self.segment_distance(w, seg, &query_v);
                        if d < best_d {
                            best_d = d;
                            best = w;
                        }
                    }
                    votes[best] += 1;
                }
                votes
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &v)| v)
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            }
            Aggregation::DistanceSum { resolution } => {
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for w in 0..self.words() {
                    let mut total = 0.0;
                    for seg in 0..segments {
                        let mut d = self.segment_distance(w, seg, &query_v);
                        if let Some(res) = resolution {
                            // Digitize: saturate at `res` cell-units of
                            // full mismatch current.
                            let unit = self.config.device.g_on / res as f64;
                            d = (d / unit).round().min(res as f64) * unit;
                        }
                        total += d;
                    }
                    if total < best_d {
                        best_d = total;
                        best = w;
                    }
                }
                best
            }
        }
    }

    /// Test-set accuracy of CAM-based classification.
    ///
    /// Test queries are independent, so evaluation fans out across
    /// threads (the Fig. 3F/3G sweeps run hundreds of these).
    pub fn accuracy(&self, encoder: &Encoder, data: &Dataset) -> f64 {
        let n = data.test_labels.len();
        if n == 0 {
            return 0.0;
        }
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n);
        let chunk = n.div_ceil(threads);
        let correct = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for start in (0..n).step_by(chunk) {
                let end = (start + chunk).min(n);
                handles.push(scope.spawn(move |_| {
                    let mut local = 0usize;
                    for i in start..end {
                        let hv = quantize_hv(
                            &encoder.encode(data.test.row(i)),
                            self.config.bits_per_cell,
                        );
                        if self.search(&hv) == data.test_labels[i] {
                            local += 1;
                        }
                    }
                    local
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("accuracy worker panicked"))
                .sum::<usize>()
        })
        .expect("accuracy scope panicked");
        correct as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::EncoderConfig;
    use crate::model::HdcModel;
    use xlda_datagen::ClassificationSpec;

    fn setup(hv_dim: usize) -> (Encoder, HdcModel, xlda_datagen::Dataset) {
        let data = ClassificationSpec::emg_like().generate();
        let encoder = Encoder::new(&EncoderConfig {
            dim_in: data.dim(),
            hv_dim,
            ..EncoderConfig::default()
        });
        let model = HdcModel::train(&encoder, &data, 3, 1);
        (encoder, model, data)
    }

    #[test]
    fn ideal_cam_matches_software_accuracy() {
        let (encoder, model, data) = setup(1024);
        let config = CamSearchConfig {
            device: Fefet::silicon().with_sigma(0.0),
            subarray_cols: 1024, // full-word matchline: no aggregation
            ..CamSearchConfig::default()
        };
        let cam = CamAm::program(&model, &config, &mut Rng64::new(1));
        let sw = model.accuracy_with(&encoder, &data, crate::model::Distance::SquaredEuclidean);
        let hw = cam.accuracy(&encoder, &data);
        assert!((sw - hw).abs() < 0.03, "sw {sw} hw {hw}");
    }

    #[test]
    fn small_subarrays_cause_aggregation_errors() {
        // Fig. 3F-ii: accuracy grows with subarray size. Needs a dataset
        // hard enough that per-segment votes actually disagree: many
        // classes, high intra-class noise.
        let mut spec = ClassificationSpec::isolet_like();
        spec.noise = 3.2;
        spec.test_per_class = 10;
        let data = spec.generate();
        let encoder = Encoder::new(&EncoderConfig {
            dim_in: data.dim(),
            hv_dim: 1024,
            ..EncoderConfig::default()
        });
        let model = HdcModel::train(&encoder, &data, 3, 1);
        let acc_at = |cols: usize| {
            let config = CamSearchConfig {
                device: Fefet::silicon().with_sigma(0.0),
                subarray_cols: cols,
                ..CamSearchConfig::default()
            };
            CamAm::program(&model, &config, &mut Rng64::new(2)).accuracy(&encoder, &data)
        };
        let tiny = acc_at(8);
        let small = acc_at(64);
        let max = acc_at(1024);
        assert!(max >= small, "small {small} max {max}");
        assert!(max > tiny, "tiny {tiny} max {max}");
    }

    #[test]
    fn paper_sigma_is_tolerated() {
        // Fig. 3G-ii: 94 mV programming sigma costs no accuracy.
        let (encoder, model, data) = setup(1024);
        let acc_at_sigma = |sigma: f64| {
            let config = CamSearchConfig {
                device: Fefet::silicon().with_sigma(sigma),
                subarray_cols: 64,
                ..CamSearchConfig::default()
            };
            CamAm::program(&model, &config, &mut Rng64::new(3)).accuracy(&encoder, &data)
        };
        let ideal = acc_at_sigma(0.0);
        let paper = acc_at_sigma(0.094);
        let extreme = acc_at_sigma(0.6);
        assert!(paper >= ideal - 0.03, "ideal {ideal} paper-sigma {paper}");
        assert!(extreme < ideal, "extreme sigma should finally hurt");
    }

    #[test]
    fn distance_sum_beats_voting_with_small_subarrays() {
        let (encoder, model, data) = setup(1024);
        let acc_with = |agg: Aggregation| {
            let config = CamSearchConfig {
                device: Fefet::silicon().with_sigma(0.0),
                subarray_cols: 16,
                aggregation: agg,
                ..CamSearchConfig::default()
            };
            CamAm::program(&model, &config, &mut Rng64::new(4)).accuracy(&encoder, &data)
        };
        let vote = acc_with(Aggregation::SubarrayVote);
        let sum = acc_with(Aggregation::DistanceSum { resolution: None });
        assert!(sum >= vote, "vote {vote} sum {sum}");
    }

    #[test]
    fn segments_cover_word() {
        let (_, model, _) = setup(1000);
        let config = CamSearchConfig {
            subarray_cols: 64,
            ..CamSearchConfig::default()
        };
        let cam = CamAm::program(&model, &config, &mut Rng64::new(5));
        assert_eq!(cam.segments(), 16); // ceil(1000/64)
        assert_eq!(cam.words(), 5);
    }

    #[test]
    #[should_panic(expected = "query length mismatch")]
    fn wrong_query_length_panics() {
        let (_, model, _) = setup(256);
        let cam = CamAm::program(&model, &CamSearchConfig::default(), &mut Rng64::new(6));
        cam.search(&[0.0; 8]);
    }
}
