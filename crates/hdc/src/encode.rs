//! Hypervector encoding and element quantization.

use xlda_num::matrix::Matrix;
use xlda_num::rng::Rng64;

/// Encoding style (Fig. 3A encoding module).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EncodingStyle {
    /// Dense bipolar random projection: `hv = P x` with `P ∈ {-1,+1}`.
    RandomProjection,
    /// ID-level encoding: each input feature is quantized to one of
    /// `levels` level HVs and bound to its position HV; the results are
    /// bundled. A common alternative for streaming/low-power encoders.
    IdLevel {
        /// Number of quantization levels for feature values.
        levels: usize,
    },
}

/// Encoder configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EncoderConfig {
    /// Input feature dimensionality.
    pub dim_in: usize,
    /// Hypervector dimensionality (the paper's 1K-10K range).
    pub hv_dim: usize,
    /// Encoding style.
    pub style: EncodingStyle,
    /// Seed for the random projection / item memories.
    pub seed: u64,
}

impl Default for EncoderConfig {
    /// 4096-dimensional random projection from a 512-feature input.
    fn default() -> Self {
        Self {
            dim_in: 512,
            hv_dim: 4096,
            style: EncodingStyle::RandomProjection,
            seed: 0x11dc,
        }
    }
}

/// A constructed HDC encoder.
#[derive(Debug, Clone)]
pub struct Encoder {
    config: EncoderConfig,
    /// Projection matrix (`hv_dim x dim_in`) for random projection, or
    /// position HVs for ID-level.
    proj: Matrix,
    /// Level HVs (`levels x hv_dim`) for ID-level encoding.
    level_hvs: Option<Matrix>,
}

impl Encoder {
    /// Builds an encoder from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero or `IdLevel` has fewer than 2 levels.
    pub fn new(config: &EncoderConfig) -> Self {
        assert!(
            config.dim_in > 0 && config.hv_dim > 0,
            "dimensions must be positive"
        );
        let mut rng = Rng64::new(config.seed);
        match config.style {
            EncodingStyle::RandomProjection => {
                let proj = Matrix::random_bipolar(config.hv_dim, config.dim_in, &mut rng);
                Self {
                    config: config.clone(),
                    proj,
                    level_hvs: None,
                }
            }
            EncodingStyle::IdLevel { levels } => {
                assert!(levels >= 2, "need at least two levels");
                // Position HVs: one bipolar HV per input feature.
                let proj = Matrix::random_bipolar(config.dim_in, config.hv_dim, &mut rng);
                // Level HVs: start random, flip a sliding window so that
                // nearby levels stay correlated (standard construction).
                let mut lv = Matrix::zeros(levels, config.hv_dim);
                let base = rng.bipolar_vec(config.hv_dim);
                let flips_per_level = config.hv_dim / (2 * (levels - 1));
                let mut current = base;
                let mut order: Vec<usize> = (0..config.hv_dim).collect();
                rng.shuffle(&mut order);
                let mut cursor = 0usize;
                for l in 0..levels {
                    lv.row_mut(l).copy_from_slice(&current);
                    for _ in 0..flips_per_level {
                        if cursor < order.len() {
                            current[order[cursor]] *= -1.0;
                            cursor += 1;
                        }
                    }
                }
                Self {
                    config: config.clone(),
                    proj,
                    level_hvs: Some(lv),
                }
            }
        }
    }

    /// The configuration used to build this encoder.
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// Hypervector dimensionality.
    pub fn hv_dim(&self) -> usize {
        self.config.hv_dim
    }

    /// Encodes one input feature vector into an (analog) hypervector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the configured input dimension.
    pub fn encode(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.config.dim_in, "input dimension mismatch");
        match self.config.style {
            EncodingStyle::RandomProjection => {
                let hv = self.proj.matvec(x);
                // Normalize to unit max magnitude for stable quantization.
                let m = hv.iter().fold(0.0f64, |a, &v| a.max(v.abs())).max(1e-12);
                hv.iter().map(|&v| v / m).collect()
            }
            EncodingStyle::IdLevel { levels } => {
                let lv = self.level_hvs.as_ref().expect("level HVs exist");
                let mut acc = vec![0.0; self.config.hv_dim];
                // Map each feature to a level across the sample's own
                // dynamic range (per-sample min-max normalization).
                let lo = x.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let span = (hi - lo).max(1e-12);
                for (i, &xi) in x.iter().enumerate() {
                    let t = ((xi - lo) / span).clamp(0.0, 1.0);
                    let l = ((t * (levels - 1) as f64).round() as usize).min(levels - 1);
                    let pos = self.proj.row(i);
                    let level = lv.row(l);
                    for ((a, &p), &q) in acc.iter_mut().zip(pos).zip(level) {
                        *a += p * q; // binding by elementwise multiply
                    }
                }
                let m = acc.iter().fold(0.0f64, |a, &v| a.max(v.abs())).max(1e-12);
                acc.iter().map(|&v| v / m).collect()
            }
        }
    }
}

/// Quantizes hypervector elements to `bits` bits.
///
/// `bits == 1` produces bipolar (±1) elements; larger values use a
/// symmetric uniform grid over `[-1, 1]`; `bits >= 32` returns the input
/// unchanged (the "full precision" reference point of Fig. 3C).
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn quantize_hv(hv: &[f64], bits: u8) -> Vec<f64> {
    assert!(bits > 0, "bits must be positive");
    if bits >= 32 {
        return hv.to_vec();
    }
    if bits == 1 {
        return hv
            .iter()
            .map(|&v| if v >= 0.0 { 1.0 } else { -1.0 })
            .collect();
    }
    let levels = ((1u32 << bits) - 1) as f64;
    hv.iter()
        .map(|&v| {
            let t = ((v.clamp(-1.0, 1.0)) + 1.0) / 2.0;
            ((t * levels).round() / levels) * 2.0 - 1.0
        })
        .collect()
}

/// Maps a quantized HV element in `[-1, 1]` to its integer level index
/// for a `bits`-bit CAM cell.
///
/// # Panics
///
/// Panics if `bits` is zero or greater than 8.
pub fn element_to_level(v: f64, bits: u8) -> usize {
    assert!((1..=8).contains(&bits), "bits out of CAM range");
    let levels = ((1u32 << bits) - 1) as f64;
    let t = ((v.clamp(-1.0, 1.0)) + 1.0) / 2.0;
    (t * levels).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(hv_dim: usize) -> Encoder {
        Encoder::new(&EncoderConfig {
            dim_in: 64,
            hv_dim,
            ..EncoderConfig::default()
        })
    }

    #[test]
    fn encoding_is_deterministic() {
        let e = enc(512);
        let x: Vec<f64> = (0..64).map(|i| (i as f64 / 64.0) - 0.5).collect();
        assert_eq!(e.encode(&x), e.encode(&x));
    }

    #[test]
    fn similar_inputs_encode_similarly() {
        let e = enc(2048);
        let mut rng = Rng64::new(3);
        let x = rng.normal_vec(64, 0.0, 1.0);
        let near: Vec<f64> = x.iter().map(|&v| v + 0.01).collect();
        let far = rng.normal_vec(64, 0.0, 1.0);
        let hx = e.encode(&x);
        let s_near = xlda_num::matrix::cosine_similarity(&hx, &e.encode(&near));
        let s_far = xlda_num::matrix::cosine_similarity(&hx, &e.encode(&far));
        assert!(s_near > 0.95, "near similarity {s_near}");
        assert!(s_far < 0.5, "far similarity {s_far}");
    }

    #[test]
    fn id_level_encoder_preserves_locality() {
        let e = Encoder::new(&EncoderConfig {
            dim_in: 64,
            hv_dim: 2048,
            style: EncodingStyle::IdLevel { levels: 16 },
            seed: 9,
        });
        let mut rng = Rng64::new(4);
        let x: Vec<f64> = (0..64).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
        let near: Vec<f64> = x.iter().map(|&v| (v + 0.05).clamp(-1.0, 1.0)).collect();
        let far: Vec<f64> = (0..64).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
        let hx = e.encode(&x);
        let s_near = xlda_num::matrix::cosine_similarity(&hx, &e.encode(&near));
        let s_far = xlda_num::matrix::cosine_similarity(&hx, &e.encode(&far));
        assert!(s_near > s_far, "near {s_near} far {s_far}");
    }

    #[test]
    fn quantize_one_bit_is_bipolar() {
        let hv = [0.3, -0.7, 0.0, -0.01];
        assert_eq!(quantize_hv(&hv, 1), vec![1.0, -1.0, 1.0, -1.0]);
    }

    #[test]
    fn quantize_32_bits_is_identity() {
        let hv = [0.123, -0.456];
        assert_eq!(quantize_hv(&hv, 32), hv.to_vec());
    }

    #[test]
    fn quantize_error_shrinks_with_bits() {
        let e = enc(1024);
        let mut rng = Rng64::new(5);
        let hv = e.encode(&rng.normal_vec(64, 0.0, 1.0));
        let err = |bits: u8| -> f64 {
            let q = quantize_hv(&hv, bits);
            hv.iter().zip(&q).map(|(a, b)| (a - b).abs()).sum::<f64>() / hv.len() as f64
        };
        assert!(err(2) < err(1));
        assert!(err(4) < err(2));
        assert!(err(8) < err(4));
    }

    #[test]
    fn level_mapping_roundtrips_grid_points() {
        for bits in 1..=3u8 {
            let levels = (1u32 << bits) as usize;
            for l in 0..levels {
                let v = (l as f64 / (levels - 1) as f64) * 2.0 - 1.0;
                assert_eq!(element_to_level(v, bits), l);
            }
        }
    }

    #[test]
    #[should_panic(expected = "bits must be positive")]
    fn zero_bits_panics() {
        quantize_hv(&[0.0], 0);
    }
}
