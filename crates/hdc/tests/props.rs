//! Property-based tests for the HDC stack.

use proptest::prelude::*;
use xlda_hdc::encode::{element_to_level, quantize_hv, Encoder, EncoderConfig, EncodingStyle};
use xlda_num::rng::Rng64;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn quantization_is_idempotent(
        hv in prop::collection::vec(-1.0f64..1.0, 1..64),
        bits in 1u8..8,
    ) {
        let q = quantize_hv(&hv, bits);
        prop_assert_eq!(quantize_hv(&q, bits), q);
    }

    #[test]
    fn quantized_values_on_grid(
        hv in prop::collection::vec(-2.0f64..2.0, 1..64),
        bits in 2u8..8,
    ) {
        let levels = ((1u32 << bits) - 1) as f64;
        for v in quantize_hv(&hv, bits) {
            prop_assert!((-1.0..=1.0).contains(&v));
            let code = (v + 1.0) / 2.0 * levels;
            prop_assert!((code - code.round()).abs() < 1e-9, "off-grid value {v}");
        }
    }

    #[test]
    fn quantization_error_bounded_by_half_step(
        hv in prop::collection::vec(-1.0f64..1.0, 1..64),
        bits in 2u8..8,
    ) {
        let step = 2.0 / ((1u32 << bits) - 1) as f64;
        for (a, b) in hv.iter().zip(quantize_hv(&hv, bits)) {
            prop_assert!((a - b).abs() <= step / 2.0 + 1e-12);
        }
    }

    #[test]
    fn level_mapping_is_monotone(bits in 1u8..=8, a in -1.0f64..1.0, b in -1.0f64..1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(element_to_level(lo, bits) <= element_to_level(hi, bits));
    }

    #[test]
    fn encoding_dimension_and_range(
        dim_in in 4usize..64,
        hv_dim in 16usize..256,
        seed in any::<u64>(),
    ) {
        let encoder = Encoder::new(&EncoderConfig {
            dim_in,
            hv_dim,
            style: EncodingStyle::RandomProjection,
            seed,
        });
        let mut rng = Rng64::new(seed ^ 1);
        let x = rng.normal_vec(dim_in, 0.0, 1.0);
        let hv = encoder.encode(&x);
        prop_assert_eq!(hv.len(), hv_dim);
        prop_assert!(hv.iter().all(|&v| (-1.0..=1.0).contains(&v)));
        // Normalization: the largest magnitude element touches 1.
        let m = hv.iter().fold(0.0f64, |acc, &v| acc.max(v.abs()));
        prop_assert!((m - 1.0).abs() < 1e-9 || m == 0.0);
    }

    #[test]
    fn encoding_is_scale_covariant_in_sign(
        dim_in in 4usize..32,
        seed in any::<u64>(),
        scale in 0.1f64..10.0,
    ) {
        // Random projection then max-normalization: positive scaling of
        // the input leaves the encoded HV unchanged.
        let encoder = Encoder::new(&EncoderConfig {
            dim_in,
            hv_dim: 128,
            style: EncodingStyle::RandomProjection,
            seed,
        });
        let mut rng = Rng64::new(seed ^ 2);
        let x = rng.normal_vec(dim_in, 0.0, 1.0);
        let scaled: Vec<f64> = x.iter().map(|v| v * scale).collect();
        let a = encoder.encode(&x);
        let b = encoder.encode(&scaled);
        for (u, v) in a.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-9, "{u} vs {v}");
        }
    }

    #[test]
    fn id_level_encoder_produces_valid_hvs(
        dim_in in 4usize..24,
        levels in 2usize..16,
        seed in any::<u64>(),
    ) {
        let encoder = Encoder::new(&EncoderConfig {
            dim_in,
            hv_dim: 128,
            style: EncodingStyle::IdLevel { levels },
            seed,
        });
        let mut rng = Rng64::new(seed ^ 3);
        let x: Vec<f64> = (0..dim_in).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
        let hv = encoder.encode(&x);
        prop_assert_eq!(hv.len(), 128);
        prop_assert!(hv.iter().all(|v| v.is_finite()));
    }
}
