//! Criterion microbenchmarks of the simulator kernels themselves —
//! the throughput that makes the analytical-triage methodology viable
//! (a full Fig. 3H regeneration is seconds, not SPICE-days).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use xlda_circuit::matchline::{Matchline, MatchlineConfig};
use xlda_circuit::senseamp::SenseAmp;
use xlda_circuit::tech::TechNode;
use xlda_core::evaluate::{HdcScenario, Scenario};
use xlda_core::triage::{rank, Objective};
use xlda_crossbar::{Crossbar, CrossbarConfig, Fidelity};
use xlda_evacam::acam::{AcamArray, AcamConfig, TreeNode};
use xlda_evacam::variation::{analytic_error_probability, CellVariation};
use xlda_evacam::{CamArray, CamConfig};
use xlda_hdc::encode::{Encoder, EncoderConfig};
use xlda_num::{Matrix, Rng64};
use xlda_nvram::{OptTarget, RamArray, RamConfig};
use xlda_syssim::alp::run_streams;
use xlda_syssim::system::{System, SystemConfig};
use xlda_syssim::workload::{cnn_trace, lstm_trace};

fn bench_crossbar_mvm(c: &mut Criterion) {
    let mut rng = Rng64::new(1);
    let cfg = CrossbarConfig::default(); // 64x64
    let w = Matrix::random_normal(cfg.rows, cfg.cols, 0.0, 0.5, &mut rng);
    let xbar = Crossbar::program(&cfg, &w, &mut rng);
    let x: Vec<f64> = rng.normal_vec(cfg.rows, 0.0, 0.3);
    let mut g = c.benchmark_group("crossbar_mvm_64x64");
    g.bench_function("ideal", |b| {
        b.iter(|| xbar.mvm(black_box(&x), Fidelity::Ideal))
    });
    g.bench_function("fast_ir_drop", |b| {
        b.iter(|| xbar.mvm(black_box(&x), Fidelity::Fast))
    });
    g.bench_function("full_nodal_solve", |b| {
        b.iter(|| xbar.mvm(black_box(&x), Fidelity::Full))
    });
    g.finish();
}

fn bench_hdc_encode(c: &mut Criterion) {
    let encoder = Encoder::new(&EncoderConfig {
        dim_in: 617,
        hv_dim: 4096,
        ..EncoderConfig::default()
    });
    let mut rng = Rng64::new(2);
    let x = rng.normal_vec(617, 0.0, 1.0);
    c.bench_function("hdc_encode_617_to_4096", |b| {
        b.iter(|| encoder.encode(black_box(&x)))
    });
}

fn bench_evacam_model(c: &mut Criterion) {
    c.bench_function("evacam_model_1k_x_128", |b| {
        b.iter(|| {
            let cam = CamArray::new(black_box(CamConfig::default())).expect("models");
            cam.report()
        })
    });
}

fn bench_matchline_limit(c: &mut Criterion) {
    let tech = TechNode::n40();
    let sa = SenseAmp::voltage_latch(&tech);
    c.bench_function("matchline_mismatch_limit_256", |b| {
        b.iter(|| {
            let ml = Matchline::new(MatchlineConfig::default(), &tech, black_box(256));
            ml.mismatch_limit(&sa)
        })
    });
}

fn bench_nvram_organize(c: &mut Criterion) {
    c.bench_function("nvram_auto_organize_1mib", |b| {
        b.iter(|| {
            RamArray::auto_organize(black_box(&RamConfig::default()), OptTarget::ReadLatency)
                .expect("organizes")
        })
    });
}

fn bench_syssim(c: &mut Criterion) {
    let w = cnn_trace(8);
    let sys = System::new(&SystemConfig::with_crossbar());
    c.bench_function("syssim_cnn8_with_crossbar", |b| {
        b.iter(|| sys.run(black_box(&w)))
    });
}

fn bench_dse_triage(c: &mut Criterion) {
    let scenario = HdcScenario::default();
    c.bench_function("dse_fig3h_candidates_and_rank", |b| {
        b.iter(|| {
            let cands = black_box(&scenario).candidates().expect("default models");
            rank(&cands, &Objective::latency_first(Some(0.9)))
        })
    });
}

fn bench_acam_search(c: &mut Criterion) {
    // A depth-6 balanced tree (64 leaves) over 8 features.
    fn tree(depth: usize, f: usize, next: &mut usize) -> TreeNode {
        if depth == 0 {
            let class = *next;
            *next += 1;
            return TreeNode::Leaf { class };
        }
        TreeNode::Split {
            feature: depth % f,
            threshold: 0.5,
            left: Box::new(tree(depth - 1, f, next)),
            right: Box::new(tree(depth - 1, f, next)),
        }
    }
    let mut next = 0;
    let t = tree(6, 8, &mut next);
    let (rows, labels) = t.to_acam_rows(8);
    let mut rng = Rng64::new(1);
    let acam = AcamArray::program(&rows, &labels, AcamConfig::default(), &mut rng);
    let q = [0.3f64, 0.6, 0.1, 0.9, 0.5, 0.2, 0.7, 0.4];
    c.bench_function("acam_search_64_leaves", |b| {
        b.iter(|| acam.classify(black_box(&q), &mut rng))
    });
}

fn bench_variation_formula(c: &mut Criterion) {
    let cfg = MatchlineConfig::default();
    let var = CellVariation::default();
    c.bench_function("variation_analytic_error_256", |b| {
        b.iter(|| analytic_error_probability(black_box(&cfg), &var, 256, 4))
    });
}

fn bench_alp(c: &mut Criterion) {
    let streams = [cnn_trace(4), lstm_trace(8, 256)];
    let cfg = SystemConfig::with_crossbar();
    c.bench_function("alp_two_streams", |b| {
        b.iter(|| run_streams(black_box(&cfg), &streams))
    });
}

criterion_group!(
    benches,
    bench_crossbar_mvm,
    bench_hdc_encode,
    bench_evacam_model,
    bench_matchline_limit,
    bench_nvram_organize,
    bench_syssim,
    bench_dse_triage,
    bench_acam_search,
    bench_variation_formula,
    bench_alp
);
criterion_main!(benches);
