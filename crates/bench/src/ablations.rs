//! Ablation studies for the design choices DESIGN.md §4 calls out.
//!
//! Each ablation isolates one design decision of the modeled systems and
//! quantifies what it buys:
//!
//! 1. **Subarray aggregation**: per-subarray winner voting vs digitized
//!    distance summing (CAM periphery complexity vs accuracy).
//! 2. **HDC encoding style**: dense random projection vs ID-level
//!    binding.
//! 3. **IR-drop solver**: closed-form per-column attenuation vs full
//!    Gauss–Seidel nodal solve (model fidelity vs runtime).
//! 4. **CAM row banking**: flat array vs banked searchlines.
//! 5. **Crossbar ADC sharing**: converters per column vs multiplexed.

use crate::hard_isolet;
use xlda_circuit::tech::TechNode;
use xlda_crossbar::macro_model::CrossbarMacro;
use xlda_crossbar::{Crossbar, CrossbarConfig, Fidelity};
use xlda_device::fefet::Fefet;
use xlda_evacam::{CamArray, CamConfig};
use xlda_hdc::cam::{Aggregation, CamAm, CamSearchConfig};
use xlda_hdc::encode::{Encoder, EncoderConfig, EncodingStyle};
use xlda_hdc::model::{Distance, HdcModel};
use xlda_num::{Matrix, Rng64};

/// One ablation row: a labeled pair of alternatives and their scores.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Which design choice.
    pub study: &'static str,
    /// Alternative label.
    pub variant: &'static str,
    /// Primary metric (meaning depends on the study; see `metric`).
    pub value: f64,
    /// What `value` measures.
    pub metric: &'static str,
}

/// Runs all ablations.
pub fn run(quick: bool) -> Vec<AblationRow> {
    let mut rows = Vec::new();

    // 1. Aggregation scheme at a small subarray size.
    let data = hard_isolet(quick);
    let hv_dim = if quick { 512 } else { 1024 };
    let encoder = Encoder::new(&EncoderConfig {
        dim_in: data.dim(),
        hv_dim,
        ..EncoderConfig::default()
    });
    let model = HdcModel::train(&encoder, &data, 3, 1);
    for (variant, agg) in [
        ("subarray vote", Aggregation::SubarrayVote),
        (
            "distance sum",
            Aggregation::DistanceSum { resolution: None },
        ),
        (
            "distance sum, 8-level ADC",
            Aggregation::DistanceSum {
                resolution: Some(8),
            },
        ),
    ] {
        let config = CamSearchConfig {
            bits_per_cell: 3,
            subarray_cols: 16,
            device: Fefet::silicon().with_sigma(0.0),
            aggregation: agg,
            verify_tolerance: None,
        };
        let cam = CamAm::program(&model, &config, &mut Rng64::new(1));
        rows.push(AblationRow {
            study: "aggregation (16-cell subarrays)",
            variant,
            value: cam.accuracy(&encoder, &data),
            metric: "accuracy",
        });
    }

    // 2. Encoding style at equal HV dimension, across noise regimes.
    //    Random projection preserves dense linear structure and degrades
    //    gracefully; ID-level binding quantizes feature values, so heavy
    //    per-feature noise destroys its level assignments first.
    for noise in [2.0, 4.0] {
        let enc_data = crate::hard_isolet_with(noise, quick);
        for (variant, style) in [
            ("random projection", EncodingStyle::RandomProjection),
            ("ID-level binding", EncodingStyle::IdLevel { levels: 16 }),
        ] {
            let enc = Encoder::new(&EncoderConfig {
                dim_in: enc_data.dim(),
                hv_dim,
                style,
                seed: 0xab,
            });
            let m = HdcModel::train(&enc, &enc_data, 3, 1);
            rows.push(AblationRow {
                study: if noise < 3.0 {
                    "encoding style (moderate noise)"
                } else {
                    "encoding style (heavy noise)"
                },
                variant,
                value: m.accuracy_with(&enc, &enc_data, Distance::Cosine),
                metric: "accuracy",
            });
        }
    }

    // 3. IR-drop solver fidelity: error of the fast model against the
    //    full nodal solve, and their runtime ratio.
    let mut rng = Rng64::new(2);
    let xcfg = CrossbarConfig {
        rows: 32,
        cols: 32,
        read_noise: 0.0,
        adc_bits: 0,
        dac_bits: 8,
        r_wire: 5.0,
        ..CrossbarConfig::default()
    };
    let w = Matrix::random_normal(32, 32, 0.0, 0.5, &mut rng);
    let xbar = Crossbar::program(&xcfg, &w, &mut rng);
    let trials = if quick { 5 } else { 20 };
    let mut dev_sum = 0.0;
    let mut n = 0usize;
    let t_fast = std::time::Instant::now();
    let mut fast_results = Vec::new();
    for t in 0..trials {
        let x = Rng64::new(100 + t as u64).normal_vec(32, 0.0, 0.5);
        fast_results.push((x.clone(), xbar.mvm(&x, Fidelity::Fast)));
    }
    let fast_elapsed = t_fast.elapsed().as_secs_f64();
    let t_full = std::time::Instant::now();
    for (x, fast) in &fast_results {
        let full = xbar.mvm(x, Fidelity::Full);
        for (a, b) in fast.iter().zip(&full) {
            dev_sum += (a - b).abs();
            n += 1;
        }
    }
    let full_elapsed = t_full.elapsed().as_secs_f64();
    rows.push(AblationRow {
        study: "IR-drop solver",
        variant: "fast vs full deviation",
        value: dev_sum / n as f64,
        metric: "mean |Δ| (weight units)",
    });
    rows.push(AblationRow {
        study: "IR-drop solver",
        variant: "full/fast runtime ratio",
        value: full_elapsed / fast_elapsed.max(1e-9),
        metric: "x",
    });

    // 4. Row banking on a large CAM.
    for (variant, banks) in [("flat (1 bank)", 1usize), ("4 banks", 4)] {
        let cam = CamArray::new(CamConfig {
            words: 8192,
            bits_per_word: 128,
            row_banks: banks,
            tech: TechNode::n40(),
            ..CamConfig::default()
        })
        .expect("models");
        rows.push(AblationRow {
            study: "CAM row banking (8k words)",
            variant,
            value: cam.report().search_latency_s * 1e9,
            metric: "search latency (ns)",
        });
    }

    // 5. ADC sharing on the crossbar macro.
    let tech = TechNode::n40();
    let mcfg = CrossbarConfig {
        rows: 256,
        cols: 256,
        ..CrossbarConfig::default()
    };
    let shares = [
        ("ADC per column", 1usize),
        ("8:1 shared", 8),
        ("32:1 shared", 32),
    ];
    for (variant, share) in shares {
        let m = CrossbarMacro::new(&mcfg, &tech, share);
        rows.push(AblationRow {
            study: "crossbar ADC sharing (area mm²)",
            variant,
            value: m.area_m2() * 1e6,
            metric: "area (mm²)",
        });
    }
    for (variant, share) in shares {
        let m = CrossbarMacro::new(&mcfg, &tech, share);
        rows.push(AblationRow {
            study: "crossbar ADC sharing (latency ns)",
            variant,
            value: m.mvm_cost().latency_s * 1e9,
            metric: "MVM latency (ns)",
        });
    }

    rows
}

/// Prints the ablation table.
pub fn print(rows: &[AblationRow]) {
    println!("Ablations — design choices of DESIGN.md §4");
    crate::rule(80);
    let mut last = "";
    for r in rows {
        if r.study != last {
            println!("\n[{}]", r.study);
            last = r.study;
        }
        println!("  {:<28} {:>12.4}  ({})", r.variant, r.value, r.metric);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_reproduce_expected_orderings() {
        let rows = run(true);
        let get = |study: &str, variant: &str| {
            rows.iter()
                .find(|r| r.study.starts_with(study) && r.variant == variant)
                .unwrap_or_else(|| panic!("{study}/{variant}"))
                .value
        };
        // Distance summing beats voting at tiny subarrays.
        assert!(get("aggregation", "distance sum") >= get("aggregation", "subarray vote"));
        // Banking shortens searchlines => lower latency.
        assert!(get("CAM row banking", "4 banks") < get("CAM row banking", "flat (1 bank)"));
        // Sharing ADCs saves area but costs latency.
        assert!(
            get("crossbar ADC sharing (area mm²)", "32:1 shared")
                < get("crossbar ADC sharing (area mm²)", "ADC per column")
        );
        assert!(
            get("crossbar ADC sharing (latency ns)", "32:1 shared")
                > get("crossbar ADC sharing (latency ns)", "ADC per column")
        );
        // The fast IR-drop model stays close to the nodal solve.
        assert!(get("IR-drop solver", "fast vs full deviation") < 0.5);
    }
}
