//! `--flight-overhead`: the flight-recorder cost gate.
//!
//! The ISSUE 10 recorder promises "~two atomic stores per stage" of
//! added work; this harness holds it to that. It drives the loadgen
//! request mix through two in-process servers — one with the recorder
//! and access log off, one with both on (the log writing to
//! `io::sink`) — in **interleaved pairs**, so slow drift of the
//! machine (thermal state, page cache, competing jobs) lands on both
//! sides of every pair instead of biasing one mode.
//!
//! Two things are gated:
//!
//! - **checksum parity** — the FNV-64 of the *sorted* response lines
//!   must be bit-identical between modes in every pair (responses are
//!   deterministic and the ids are fixed, so sorting removes the only
//!   legitimate difference: completion order);
//! - **best-batch overhead** — `min(on) / min(off) - 1` across all
//!   pairs, which must stay under [`FLIGHT_OVERHEAD_LIMIT`].
//!   Minima, not medians: scheduler noise on a small (possibly
//!   single-core) CI box is strictly additive — a batch can only be
//!   descheduled, never sped up — so the fastest batch of each mode is
//!   the cleanest estimate of its true cost, while a median of short
//!   batches still swings by ±20%. The per-pair medians are reported
//!   for context but not gated.
//!
//! Setting `XLDA_NO_LOG` drops the access log from the "on" side — a
//! diagnostic knob for attributing an overhead regression to the
//! recorder vs the log line path.

use std::io;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use xlda_core::sweep::memo;
use xlda_serve::{AccessLog, Server, ServerConfig, SharedWriter};

/// Maximum tolerated best-batch wall overhead of recorder + access log.
pub const FLIGHT_OVERHEAD_LIMIT: f64 = 0.05;

/// One interleaved pair's wall times and response checksums.
pub struct PairSample {
    /// Recorder-off batch wall time.
    pub off: Duration,
    /// Recorder-on batch wall time.
    pub on: Duration,
    /// FNV-64 over the sorted recorder-off response lines.
    pub checksum_off: u64,
    /// Same for the recorder-on batch.
    pub checksum_on: u64,
}

/// Whole-run results of the overhead harness.
pub struct FlightOverheadReport {
    /// Interleaved samples, in execution order.
    pub pairs: Vec<PairSample>,
    /// Requests per batch.
    pub batch_requests: usize,
    /// Responses that were backpressure rejections (must be zero: the
    /// queue is sized to the batch, and a rejection would poison the
    /// checksum comparison).
    pub rejections: u64,
}

impl FlightOverheadReport {
    /// Median of the per-pair `(on - off) / off` overhead fractions
    /// (reported for context; the gate uses [`Self::min_overhead`]).
    pub fn median_overhead(&self) -> f64 {
        let mut fracs: Vec<f64> = self
            .pairs
            .iter()
            .map(|p| (p.on.as_secs_f64() - p.off.as_secs_f64()) / p.off.as_secs_f64().max(1e-12))
            .collect();
        fracs.sort_by(f64::total_cmp);
        if fracs.is_empty() {
            0.0
        } else {
            fracs[fracs.len() / 2]
        }
    }

    /// The gated estimator: fastest-on over fastest-off, minus one.
    /// Robust to additive scheduler noise (see the module docs).
    pub fn min_overhead(&self) -> f64 {
        let min = |f: fn(&PairSample) -> Duration| {
            self.pairs
                .iter()
                .map(f)
                .min()
                .unwrap_or(Duration::ZERO)
                .as_secs_f64()
        };
        let (off, on) = (min(|p| p.off), min(|p| p.on));
        (on - off) / off.max(1e-12)
    }

    /// Whether every pair's off/on checksums were bit-identical.
    pub fn checksums_match(&self) -> bool {
        self.pairs.iter().all(|p| p.checksum_off == p.checksum_on)
    }
}

/// FNV-1a 64 over a byte stream.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A writer that forwards complete response lines to a channel.
struct LineChannel {
    tx: mpsc::Sender<String>,
    buf: Vec<u8>,
}

impl io::Write for LineChannel {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(data);
        while let Some(nl) = self.buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.buf.drain(..=nl).collect();
            let text = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
            let _ = self.tx.send(text);
        }
        Ok(data.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn line_writer() -> (SharedWriter, mpsc::Receiver<String>) {
    let (tx, rx) = mpsc::channel();
    (
        SharedWriter::new(Box::new(LineChannel {
            tx,
            buf: Vec::new(),
        })),
        rx,
    )
}

/// Sends every line, waits for every response, returns wall time,
/// checksum of the sorted responses, and rejections seen.
fn run_batch(
    server: &Server,
    writer: &SharedWriter,
    rx: &mpsc::Receiver<String>,
    lines: &[String],
) -> (Duration, u64, u64) {
    let start = Instant::now();
    for l in lines {
        server.handle_line(l, writer);
    }
    let mut responses = Vec::with_capacity(lines.len());
    for _ in 0..lines.len() {
        responses.push(
            rx.recv_timeout(Duration::from_secs(120))
                .expect("response within deadline"),
        );
    }
    let elapsed = start.elapsed();
    let rejections = responses
        .iter()
        .filter(|l| l.contains("\"code\":\"queue_full\""))
        .count() as u64;
    responses.sort();
    (elapsed, fnv64(responses.join("\n").as_bytes()), rejections)
}

/// Runs the interleaved off/on comparison. `smoke` shrinks batch count
/// and size for CI.
pub fn run(smoke: bool) -> FlightOverheadReport {
    let (reps, pair_count) = if smoke { (40, 15) } else { (60, 21) };
    let bodies = crate::loadgen::mix_bodies();
    // Fixed ids: identical request (and therefore response) text in
    // both modes, so sorted-line checksums are comparable.
    let lines: Vec<String> = (0..reps)
        .flat_map(|rep| {
            bodies
                .iter()
                .enumerate()
                .map(move |(k, body)| format!("{{\"id\":\"f{rep}-{k}\",{body}}}"))
                .collect::<Vec<_>>()
        })
        .collect();
    let config = |flight: bool| ServerConfig {
        // Admit the whole batch: a backpressure rejection would make
        // the two modes answer different text.
        queue_cap: lines.len() + 8,
        flight,
        ..ServerConfig::default()
    };
    let server_off = Server::new(config(false));
    // The "on" side carries the full observability tax: recorder plus
    // a live access log (sink-backed, so the cost measured is the line
    // formatting and channel, not the disk).
    let log = (std::env::var("XLDA_NO_LOG").is_err())
        .then(|| AccessLog::with_writer(Box::new(io::sink()), 8192));
    let server_on = Server::with_parts(config(true), None, log);
    let (w_off, rx_off) = line_writer();
    let (w_on, rx_on) = line_writer();

    // Warm the memo caches and both servers' pools before timing, so
    // pairs measure steady-state serving, not first-touch evaluation.
    memo::clear_all();
    let _ = run_batch(&server_off, &w_off, &rx_off, &lines);
    let _ = run_batch(&server_on, &w_on, &rx_on, &lines);

    let mut pairs = Vec::with_capacity(pair_count);
    let mut rejections = 0;
    for i in 0..pair_count {
        // Alternate which mode runs first so slow drift (cgroup quota
        // refills, thermal ramps) cannot systematically favor one side.
        let (off, on, checksum_off, checksum_on) = if i % 2 == 0 {
            let (off, ck_off, rej_off) = run_batch(&server_off, &w_off, &rx_off, &lines);
            let (on, ck_on, rej_on) = run_batch(&server_on, &w_on, &rx_on, &lines);
            rejections += rej_off + rej_on;
            (off, on, ck_off, ck_on)
        } else {
            let (on, ck_on, rej_on) = run_batch(&server_on, &w_on, &rx_on, &lines);
            let (off, ck_off, rej_off) = run_batch(&server_off, &w_off, &rx_off, &lines);
            rejections += rej_off + rej_on;
            (off, on, ck_off, ck_on)
        };
        pairs.push(PairSample {
            off,
            on,
            checksum_off,
            checksum_on,
        });
    }
    FlightOverheadReport {
        pairs,
        batch_requests: lines.len(),
        rejections,
    }
}

/// Human-readable summary.
pub fn print(report: &FlightOverheadReport) {
    println!(
        "flight-recorder overhead — {} requests/batch, {} interleaved pairs",
        report.batch_requests,
        report.pairs.len()
    );
    crate::rule(64);
    println!(
        "{:>5} {:>12} {:>12} {:>10} {:>9}",
        "pair", "off ms", "on ms", "overhead", "checksum"
    );
    for (i, p) in report.pairs.iter().enumerate() {
        let frac = (p.on.as_secs_f64() - p.off.as_secs_f64()) / p.off.as_secs_f64().max(1e-12);
        println!(
            "{:>5} {:>12.3} {:>12.3} {:>9.2}% {:>9}",
            i,
            p.off.as_secs_f64() * 1e3,
            p.on.as_secs_f64() * 1e3,
            frac * 100.0,
            if p.checksum_off == p.checksum_on {
                "match"
            } else {
                "DIFFER"
            }
        );
    }
    println!(
        "best-batch overhead {:.2}% (limit {:.0}%, median {:.2}%), responses {}",
        report.min_overhead() * 100.0,
        FLIGHT_OVERHEAD_LIMIT * 100.0,
        report.median_overhead() * 100.0,
        if report.checksums_match() {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );
}

/// Gate used by the binary.
pub fn failures(report: &FlightOverheadReport) -> Vec<String> {
    let mut out = Vec::new();
    if report.rejections > 0 {
        out.push(format!(
            "{} backpressure rejections poisoned the comparison (queue sized too small?)",
            report.rejections
        ));
    }
    if !report.checksums_match() {
        out.push("recorder-on responses are not bit-identical to recorder-off".to_string());
    }
    let frac = report.min_overhead();
    if frac > FLIGHT_OVERHEAD_LIMIT {
        out.push(format!(
            "flight recorder best-batch overhead {:.2}% exceeds {:.0}%",
            frac * 100.0,
            FLIGHT_OVERHEAD_LIMIT * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaved_pairs_agree_bit_for_bit() {
        // A tiny run: the checksum-parity half of the gate must hold
        // under test (the overhead half needs a quiet machine, so the
        // threshold itself is only enforced in the CI job).
        let report = run(true);
        assert_eq!(report.rejections, 0);
        assert!(report.checksums_match(), "responses diverged");
        assert_eq!(report.pairs.len(), 15);
        assert!(report.batch_requests > 0);
    }
}
