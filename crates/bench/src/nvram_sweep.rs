//! Sec. VI (memory lane) — NVSim-style FOM sweep across technologies and
//! capacities.
//!
//! Supports the DSE narrative: which technology wins the conventional
//! RAM/cache lane at each capacity point, and where flash's density
//! stops compensating for its write cost.

use xlda_nvram::{OptTarget, RamArray, RamCell, RamConfig, RamReport};

/// One sweep row.
#[derive(Debug, Clone, PartialEq)]
pub struct RamRow {
    /// Cell label.
    pub cell: String,
    /// Capacity in MiB.
    pub capacity_mib: f64,
    /// Figures of merit.
    pub report: RamReport,
}

/// Sweeps cells × capacities with a read-latency objective.
pub fn run(quick: bool) -> Vec<RamRow> {
    let cells = [
        RamCell::Sram6T,
        RamCell::Rram1T1R,
        RamCell::Pcm1T1R,
        RamCell::Mram1T1R,
        RamCell::Fefet1T,
        RamCell::Nand3D { layers: 64 },
    ];
    let capacities_mib: &[u64] = if quick { &[1, 16] } else { &[1, 4, 16, 64] };
    let mut rows = Vec::new();
    for cell in cells {
        for &mib in capacities_mib {
            let config = RamConfig {
                capacity_bits: mib * 8 * (1 << 20),
                word_bits: 64,
                cell,
                ..RamConfig::default()
            };
            let ram = RamArray::auto_organize(&config, OptTarget::ReadLatency)
                .expect("sweep configs organize");
            rows.push(RamRow {
                cell: cell.label(),
                capacity_mib: mib as f64,
                report: ram.report(),
            });
        }
    }
    rows
}

/// Prints the sweep table.
pub fn print(rows: &[RamRow]) {
    println!("Sec. VI — RAM-lane technology sweep (read-latency optimized)");
    crate::rule(100);
    println!(
        "{:>14} {:>8} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "cell", "MiB", "read lat", "write lat", "read E", "write E", "area mm²"
    );
    for r in rows {
        println!(
            "{:>14} {:>8.0} {:>12} {:>12} {:>12} {:>12} {:>10.3}",
            r.cell,
            r.capacity_mib,
            crate::fmt_time(r.report.read_latency_s),
            crate::fmt_time(r.report.write_latency_s),
            crate::fmt_energy(r.report.read_energy_j),
            crate::fmt_energy(r.report.write_energy_j),
            r.report.area_mm2
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reproduces_known_orderings() {
        let rows = run(true);
        let find = |cell: &str, mib: f64| {
            rows.iter()
                .find(|r| r.cell == cell && r.capacity_mib == mib)
                .expect("row")
        };
        // Flash: densest but unusable write latency (the paper's example
        // for culling design points).
        let nand = find("3D-NAND-64L", 16.0);
        let rram = find("RRAM-1T1R", 16.0);
        assert!(nand.report.area_mm2 < rram.report.area_mm2);
        assert!(nand.report.write_latency_s > 100.0 * rram.report.write_latency_s);
        // SRAM: fastest writes, biggest area.
        let sram = find("SRAM-6T", 16.0);
        assert!(sram.report.write_latency_s < rram.report.write_latency_s);
        assert!(sram.report.area_mm2 > rram.report.area_mm2);
    }
}
