//! Fig. 5 — validation of the Eva-CAM-style model against published
//! CAM silicon.
//!
//! Paper claim: projections within ~20 % of measured / SPICE data.

use xlda_evacam::validate::{validate_all, ValidationRow};

/// Runs the validation table.
///
/// # Panics
///
/// Panics if a reference configuration fails to model — that would
/// itself be a validation failure.
pub fn run(_quick: bool) -> Vec<ValidationRow> {
    validate_all().expect("reference chips must model")
}

/// Prints the validation table in the paper's layout.
pub fn print(rows: &[ValidationRow]) {
    println!("Fig. 5 — Eva-CAM validation against published NV-CAM chips");
    crate::rule(94);
    println!(
        "{:>16} {:>14} {:>10} {:>14} {:>10} {:>14} {:>10}",
        "chip", "area (µm²)", "err", "latency", "err", "energy", "err"
    );
    let fmt_err = |e: Option<f64>| match e {
        Some(v) => format!("{:+.1}%", v * 100.0),
        None => "—".to_string(),
    };
    for r in rows {
        println!(
            "{:>16} {:>14.0} {:>10} {:>14} {:>10} {:>14} {:>10}",
            r.label,
            r.model_area_um2,
            fmt_err(r.area_error),
            crate::fmt_time(r.model_latency_s),
            fmt_err(r.latency_error),
            crate::fmt_energy(r.model_energy_j),
            fmt_err(r.energy_error),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_errors_within_band() {
        let rows = run(true);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(
                r.worst_error() <= 0.20,
                "{}: worst error {:.1}%",
                r.label,
                r.worst_error() * 100.0
            );
        }
    }
}
