//! Fig. 4D — linear correlation between hashed distance and true cosine
//! distance over CNN embeddings.
//!
//! Paper shape: software LSH correlates best; the RRAM TLSH approaches
//! it; plain RRAM LSH (with relaxation-unstable bits) trails.

use xlda_crossbar::stochastic::StochasticProjection;
use xlda_datagen::fewshot::FewShotSpec;
use xlda_device::rram::Rram;
use xlda_mann::controller::{train_controller, TrainConfig};
use xlda_mann::lsh::{
    correlation_with_cosine, correlation_with_cosine_drifted, RramLsh, RramTlsh, SoftwareLsh,
};
use xlda_num::rng::Rng64;

/// Correlation results for the three hashers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrelationResult {
    /// Software sign-random-projection LSH.
    pub software: f64,
    /// RRAM stochastic-crossbar LSH (after relaxation).
    pub rram_lsh: f64,
    /// RRAM ternary LSH (after relaxation).
    pub rram_tlsh: f64,
}

/// Trains a small controller, extracts embeddings, and measures the
/// Pearson correlation of each hashing scheme with cosine distance.
pub fn run(quick: bool) -> CorrelationResult {
    let spec = FewShotSpec {
        background_classes: if quick { 6 } else { 12 },
        eval_classes: if quick { 8 } else { 16 },
        samples_per_class: if quick { 6 } else { 12 },
        ..FewShotSpec::default()
    };
    let data = spec.generate();
    let (net, _) = train_controller(
        &data,
        &TrainConfig {
            epochs: if quick { 2 } else { 4 },
            ..TrainConfig::default()
        },
    );
    // Embeddings of all evaluation images (ReLU-shifted for the RRAM
    // crossbars, matching the hardware path).
    let vectors: Vec<Vec<f64>> = data
        .eval
        .iter()
        .flat_map(|class| class.iter())
        .map(|img| net.embed(img))
        .collect();
    let dim = net.emb_dim();
    let bits = if quick { 128 } else { 256 };
    let pairs = if quick { 300 } else { 1500 };

    let mut rng = Rng64::new(0x4d);
    let sw = SoftwareLsh::new(dim, bits, &mut rng);
    let software = correlation_with_cosine(&sw, &vectors, pairs, &mut Rng64::new(1));

    // Stored memories are hashed at enrollment; queries are hashed after
    // the devices have relaxed — the comparison Fig. 4C/4D is about.
    let dev = Rram::taox();
    let proj = StochasticProjection::new(dim, bits, &dev, &mut Rng64::new(2));
    let mut drifted = proj.clone();
    drifted.relax(6.0, &mut Rng64::new(3));
    let shifted: Vec<Vec<f64>> = vectors
        .iter()
        .take(8)
        .map(|v| v.iter().map(|&x| x.max(0.0)).collect())
        .collect();
    // A conservative don't-care threshold: masks only the most
    // marginal (unstable) bits.
    let thr = proj.calibrate_threshold(&shifted, 0.1);

    let enroll_lsh = RramLsh {
        projection: proj.clone(),
    };
    let query_lsh = RramLsh {
        projection: drifted,
    };
    let rram_lsh = correlation_with_cosine_drifted(
        &enroll_lsh,
        &query_lsh,
        &vectors,
        pairs,
        &mut Rng64::new(4),
    );
    let enroll_tlsh = RramTlsh {
        projection: proj,
        threshold: thr,
    };
    let rram_tlsh = correlation_with_cosine_drifted(
        &enroll_tlsh,
        &query_lsh,
        &vectors,
        pairs,
        &mut Rng64::new(4),
    );
    CorrelationResult {
        software,
        rram_lsh,
        rram_tlsh,
    }
}

/// Prints the figure values.
pub fn print(r: &CorrelationResult) {
    println!("Fig. 4D — correlation of hashed distance with cosine distance");
    crate::rule(56);
    println!("{:>20} {:>12}", "hasher", "pearson r");
    println!("{:>20} {:>12.3}", "software LSH", r.software);
    println!("{:>20} {:>12.3}", "RRAM TLSH", r.rram_tlsh);
    println!("{:>20} {:>12.3}", "RRAM LSH", r.rram_lsh);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_paper() {
        let r = run(true);
        assert!(r.software > 0.6, "software r {}", r.software);
        assert!(
            r.rram_tlsh >= r.rram_lsh - 0.02,
            "tlsh {} lsh {}",
            r.rram_tlsh,
            r.rram_lsh
        );
        assert!(
            r.software >= r.rram_tlsh - 0.05,
            "software {} tlsh {}",
            r.software,
            r.rram_tlsh
        );
    }
}
