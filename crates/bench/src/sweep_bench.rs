//! Sweep-engine benchmark workloads (the `xlda-bench` binary).
//!
//! Measures the v2 sweep engine (work-stealing dispatch + cross-point
//! memoization, see `xlda_core::sweep`) against the v1 baseline path
//! (static chunking, memoization globally disabled) on three fixed
//! design-space-exploration workloads:
//!
//! - **hdc** — the Fig. 3H candidate set evaluated over a grid of
//!   scenario shapes (feature dim × class count × HV length);
//! - **mann** — the Fig. 4E MANN platform comparison over a grid of
//!   network/memory shapes;
//! - **triage** — full cross-layer triage: the HDC candidate set plus
//!   weighted ranking under two objectives per scenario, the paper's
//!   "rapidly triage technology-enabled architectures" loop;
//! - **mc** — Monte-Carlo MANN accuracy distributions under device
//!   variation (`xlda_core::mc`), a grid of hash/relaxation shapes; each
//!   point runs a full trial population, so the report also carries
//!   `trials_per_sec`, and the v1/v2 checksum match doubles as the
//!   chunking-determinism gate (the two arms schedule differently).
//!
//! Both runs evaluate the identical point set and must produce
//! bit-identical results (`checksum_match`); the JSON report
//! (`BENCH_sweep.json`) is the trajectory format the CI `bench-smoke`
//! job gates on.
//!
//! The **hdc** and **mann** workloads additionally carry a cold-path
//! arm pair (`cold_scalar` / `cold_columnar`): both run with
//! memoization disabled, comparing the per-point scalar engine against
//! the columnar SoA batch kernels
//! ([`xlda_core::evaluate::sweep_scenarios`] with
//! [`Columnar::Exact`]). The columnar kernels target exactly this
//! memo-miss cold path — hoisted circuit solves instead of cached ones
//! — and must stay bit-identical to the scalar arm
//! (`cold_checksum_match`).

use std::fmt::Write as _;
use xlda_circuit::tech::TechNode;
use xlda_core::evaluate::{sweep_scenarios_with_stats, HdcScenario, MannScenario, Scenario};
use xlda_core::mc::{MannAccuracyMcScenario, McParams};
use xlda_core::sweep::{memo, sweep_with_stats, Columnar, SweepOptions, SweepStats};
use xlda_core::triage::{rank, Objective};
use xlda_num::batch::{CandidateBatch, PointStatus};

/// The benchmark workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Fig. 3H HDC candidate evaluation over a scenario grid.
    Hdc,
    /// MANN platform comparison over a shape grid.
    Mann,
    /// HDC candidates + dual-objective ranking (full triage loop).
    Triage,
    /// MANN accuracy Monte-Carlo under variation, over a shape grid.
    Mc,
}

impl Workload {
    /// All workloads, in report order.
    pub fn all() -> [Workload; 4] {
        [
            Workload::Hdc,
            Workload::Mann,
            Workload::Triage,
            Workload::Mc,
        ]
    }

    /// Report name.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Hdc => "hdc",
            Workload::Mann => "mann",
            Workload::Triage => "triage",
            Workload::Mc => "mc",
        }
    }

    /// Parses a workload name.
    pub fn parse(s: &str) -> Option<Workload> {
        match s {
            "hdc" => Some(Workload::Hdc),
            "mann" => Some(Workload::Mann),
            "triage" => Some(Workload::Triage),
            "mc" => Some(Workload::Mc),
            _ => None,
        }
    }
}

/// Measurements of one engine configuration over one workload.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Wall time of the sweep (s).
    pub elapsed_s: f64,
    /// Evaluated design points per second.
    pub points_per_sec: f64,
    /// Total memo-cache hits during the sweep.
    pub cache_hits: u64,
    /// Total memo-cache misses during the sweep.
    pub cache_misses: u64,
    /// Aggregate cache hit rate (0 when memoization is disabled).
    pub cache_hit_rate: f64,
    /// Per-cache counters: (name, hits, misses, entries).
    pub caches: Vec<(String, u64, u64, u64)>,
    /// Per-span aggregates from the obs layer:
    /// (name, total seconds, self seconds, calls).
    pub layers: Vec<(String, f64, f64, u64)>,
    /// Order-sensitive FNV fold of every output bit pattern.
    pub checksum: u64,
}

/// One workload's baseline-vs-v2 comparison.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Workload name.
    pub name: &'static str,
    /// Number of sweep points.
    pub points: usize,
    /// v1 path: static chunking, memoization off.
    pub baseline: RunStats,
    /// v2 path: work-stealing, memoization on.
    pub v2: RunStats,
    /// Monte-Carlo trials evaluated inside each point (0 for the
    /// deterministic workloads).
    pub trials_per_point: usize,
    /// Cold-path (memo off) scalar-vs-columnar comparison; only the
    /// workloads with batch kernels (hdc, mann) carry one.
    pub cold: Option<ColdPath>,
}

impl WorkloadResult {
    /// Throughput ratio of v2 over the baseline path.
    pub fn speedup(&self) -> f64 {
        self.v2.points_per_sec / self.baseline.points_per_sec
    }

    /// Whether both paths produced bit-identical outputs.
    pub fn checksum_match(&self) -> bool {
        self.baseline.checksum == self.v2.checksum
    }

    /// Monte-Carlo trials per second on the v2 path (0 for the
    /// deterministic workloads).
    pub fn trials_per_sec(&self) -> f64 {
        self.v2.points_per_sec * self.trials_per_point as f64
    }
}

/// Cold-path comparison: the scalar engine vs the columnar batch
/// kernels, both with memoization disabled. This isolates the kernel
/// gain (hoisted invariant solves, SoA inner loops) from the memo
/// cache the warm arms lean on.
#[derive(Debug, Clone)]
pub struct ColdPath {
    /// Per-point scalar evaluation (`Columnar::Off`), memo off.
    pub scalar: RunStats,
    /// SoA batch kernels (`Columnar::Exact`), memo off.
    pub columnar: RunStats,
}

impl ColdPath {
    /// Throughput ratio of the columnar kernels over the cold scalar
    /// path.
    pub fn speedup(&self) -> f64 {
        self.columnar.points_per_sec / self.scalar.points_per_sec
    }

    /// Whether the two cold arms produced bit-identical outputs.
    pub fn checksum_match(&self) -> bool {
        self.scalar.checksum == self.columnar.checksum
    }
}

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
pub(crate) const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fold_f64s(values: &[f64]) -> u64 {
    values
        .iter()
        .fold(FNV_OFFSET, |h, v| (h ^ v.to_bits()).wrapping_mul(FNV_PRIME))
}

/// Folds a [`CandidateBatch`] with the same per-point structure as the
/// scalar eval closures: each Ok point folds its lanes' first `fields`
/// FOM columns (4 = latency/energy/area/accuracy for hdc, 3 for mann),
/// each failed point folds the `FNV_PRIME` error marker, and the
/// per-point hashes fold into one sweep checksum. A cold-columnar
/// checksum is therefore directly comparable to the scalar arms'.
fn fold_batch(batch: &CandidateBatch, fields: usize) -> u64 {
    let cols = [
        batch.latency_s(),
        batch.energy_j(),
        batch.area_mm2(),
        batch.accuracy(),
    ];
    (0..batch.points()).fold(FNV_OFFSET, |h, p| {
        let point = if batch.point_status(p) == PointStatus::Ok {
            batch.lane_range(p).fold(FNV_OFFSET, |h, lane| {
                cols[..fields].iter().fold(h, |h, col| {
                    (h ^ col[lane].to_bits()).wrapping_mul(FNV_PRIME)
                })
            })
        } else {
            FNV_PRIME
        };
        (h ^ point).wrapping_mul(FNV_PRIME)
    })
}

pub(crate) fn grid_hdc(smoke: bool) -> Vec<HdcScenario> {
    let dims: &[usize] = if smoke {
        &[256, 617]
    } else {
        &[256, 512, 617, 784, 1024]
    };
    let classes: &[usize] = if smoke {
        &[10, 26]
    } else {
        &[10, 16, 26, 40, 50]
    };
    let hvs: &[usize] = if smoke {
        &[1024, 2048]
    } else {
        &[1024, 2048, 4096, 8192]
    };
    let mut out = Vec::new();
    for &dim_in in dims {
        for &cls in classes {
            for &hv in hvs {
                out.push(HdcScenario {
                    dim_in,
                    classes: cls,
                    hv_dim_sw: hv,
                    hv_dim_3b: hv / 2,
                    hv_dim_2b: hv,
                    hv_dim_1b: hv,
                    tech: TechNode::n40(),
                    ..HdcScenario::default()
                });
            }
        }
    }
    out
}

pub(crate) fn grid_mann(smoke: bool) -> Vec<MannScenario> {
    let weights: &[usize] = if smoke {
        &[16_000, 65_000]
    } else {
        &[16_000, 65_000, 131_000, 262_000]
    };
    let embs: &[usize] = if smoke { &[64] } else { &[32, 64, 128] };
    let hashes: &[usize] = &[128, 256];
    let entries: &[usize] = if smoke {
        &[125, 1000]
    } else {
        &[125, 500, 1000, 5000]
    };
    let mut out = Vec::new();
    for &w in weights {
        for &e in embs {
            for &h in hashes {
                for &n in entries {
                    out.push(MannScenario {
                        weights: w,
                        emb_dim: e,
                        hash_bits: h,
                        entries: n,
                        tech: TechNode::n40(),
                        ..MannScenario::default()
                    });
                }
            }
        }
    }
    out
}

/// Trial population per MC grid point. Constant across the grid so the
/// report's `trials_per_sec` is exact, not an average.
pub(crate) const MC_TRIALS_PER_POINT: usize = 1024;

pub(crate) fn grid_mc(smoke: bool) -> Vec<MannAccuracyMcScenario> {
    let hash_bits: &[usize] = if smoke { &[64] } else { &[64, 128] };
    let decades: &[f64] = if smoke { &[3.0] } else { &[0.5, 1.5, 3.0, 4.5] };
    let noises: &[f64] = if smoke { &[0.01] } else { &[0.01, 0.05] };
    let mut out = Vec::new();
    for (i, &bits) in hash_bits.iter().enumerate() {
        for (j, &d) in decades.iter().enumerate() {
            for (k, &rn) in noises.iter().enumerate() {
                out.push(MannAccuracyMcScenario {
                    mc: McParams {
                        trials: MC_TRIALS_PER_POINT,
                        // Distinct seeds per point: the workload must not
                        // degenerate into one repeated stream.
                        seed: 0xBE2C_0000 + (i * 100 + j * 10 + k) as u64,
                        ..McParams::default()
                    },
                    hash_bits: bits,
                    relax_decades: d,
                    read_noise: rn,
                    ..MannAccuracyMcScenario::default()
                });
            }
        }
    }
    out
}

fn eval_mc(s: &MannAccuracyMcScenario) -> u64 {
    match s.evaluate() {
        Ok(eval) => eval.distributions.iter().fold(FNV_OFFSET, |h, d| {
            let h = [
                d.summary.mean,
                d.summary.std_dev,
                d.summary.p5,
                d.summary.p50,
                d.summary.p95,
                d.yield_fraction,
            ]
            .iter()
            .fold(h, |h, v| (h ^ v.to_bits()).wrapping_mul(FNV_PRIME));
            // The per-column checksum covers every trial bit, so a
            // single drifting draw anywhere fails the v1/v2 match.
            (h ^ d.checksum).wrapping_mul(FNV_PRIME)
        }),
        Err(_) => FNV_PRIME,
    }
}

fn eval_hdc(s: &HdcScenario) -> u64 {
    match s.candidates() {
        Ok(cands) => {
            let foms: Vec<f64> = cands
                .iter()
                .flat_map(|c| {
                    [
                        c.fom.latency_s,
                        c.fom.energy_j,
                        c.fom.area_mm2,
                        c.fom.accuracy,
                    ]
                })
                .collect();
            fold_f64s(&foms)
        }
        Err(_) => FNV_PRIME, // error marker, identical in both modes
    }
}

fn eval_mann(s: &MannScenario) -> u64 {
    match s.candidates() {
        Ok(cands) => {
            let foms: Vec<f64> = cands
                .iter()
                .flat_map(|c| [c.fom.latency_s, c.fom.energy_j, c.fom.area_mm2])
                .collect();
            fold_f64s(&foms)
        }
        Err(_) => FNV_PRIME,
    }
}

fn eval_triage(s: &HdcScenario) -> u64 {
    match s.candidates() {
        Ok(cands) => {
            let mut scores = Vec::new();
            for obj in [
                Objective::latency_first(Some(0.9)),
                Objective::energy_first(Some(0.9)),
            ] {
                for r in rank(&cands, &obj) {
                    scores.push(r.score);
                }
            }
            fold_f64s(&scores)
        }
        Err(_) => FNV_PRIME,
    }
}

/// Timing trials per measurement; the fastest is reported. The
/// workloads run in milliseconds, so a single trial is at the mercy of
/// scheduler noise; best-of-N recovers the engine's actual throughput.
const TRIALS: usize = 3;

fn measure<I, F>(inputs: &[I], f: F, opts: &SweepOptions, memo_on: bool, obs_on: bool) -> RunStats
where
    I: Sync,
    F: Fn(&I) -> u64 + Sync,
{
    let mut best: Option<RunStats> = None;
    for _ in 0..TRIALS {
        let run = measure_once(inputs, &f, opts, memo_on, obs_on);
        if best.as_ref().is_none_or(|b| run.elapsed_s < b.elapsed_s) {
            best = Some(run);
        }
    }
    best.expect("TRIALS >= 1")
}

fn measure_once<I, F>(
    inputs: &[I],
    f: F,
    opts: &SweepOptions,
    memo_on: bool,
    obs_on: bool,
) -> RunStats
where
    I: Sync,
    F: Fn(&I) -> u64 + Sync,
{
    // Cold caches every trial: each memoized run starts from scratch so
    // the reported speedup is the honest cold-sweep figure, not a
    // warm-cache replay. Span aggregates reset too, so the per-layer
    // breakdown reflects exactly this run.
    memo::clear_all();
    memo::set_enabled(memo_on);
    xlda_obs::reset_aggregates();
    xlda_obs::set_enabled(obs_on);
    let (out, stats) = sweep_with_stats(inputs, f, opts);
    xlda_obs::set_enabled(false);
    memo::set_enabled(true);
    let checksum = out
        .iter()
        .fold(FNV_OFFSET, |h, &c| (h ^ c).wrapping_mul(FNV_PRIME));
    run_stats(&stats, checksum)
}

fn run_stats(stats: &SweepStats, checksum: u64) -> RunStats {
    RunStats {
        elapsed_s: stats.elapsed.as_secs_f64(),
        points_per_sec: stats.points_per_sec(),
        cache_hits: stats.cache_hits(),
        cache_misses: stats.cache_misses(),
        cache_hit_rate: stats.cache_hit_rate(),
        caches: stats
            .caches
            .iter()
            .filter(|c| c.hits + c.misses > 0)
            .map(|c| (c.name.to_string(), c.hits, c.misses, c.entries))
            .collect(),
        layers: stats
            .layers
            .iter()
            .map(|l| {
                (
                    l.name.to_string(),
                    l.total_nanos as f64 * 1e-9,
                    l.self_nanos as f64 * 1e-9,
                    l.calls,
                )
            })
            .collect(),
        checksum,
    }
}

/// One cold trial: memoization and spans off, scenarios swept through
/// [`sweep_scenarios_with_stats`], checksum folded from the batch.
fn measure_cold_once<S: Scenario>(inputs: &[S], opts: &SweepOptions, fields: usize) -> RunStats {
    memo::clear_all();
    memo::set_enabled(false);
    xlda_obs::reset_aggregates();
    xlda_obs::set_enabled(false);
    let (batch, stats) = sweep_scenarios_with_stats(inputs, opts);
    memo::set_enabled(true);
    run_stats(&stats, fold_batch(&batch, fields))
}

fn measure_cold<S: Scenario>(inputs: &[S], opts: &SweepOptions, fields: usize) -> RunStats {
    let mut best: Option<RunStats> = None;
    for _ in 0..TRIALS {
        let run = measure_cold_once(inputs, opts, fields);
        if best.as_ref().is_none_or(|b| run.elapsed_s < b.elapsed_s) {
            best = Some(run);
        }
    }
    best.expect("TRIALS >= 1")
}

/// Cold-path pair for one workload: the scalar work-stealing engine
/// (its strongest memo-less configuration, so the ratio credits the
/// kernels and not the scheduler) vs the columnar batch kernels.
fn cold_compare<S: Scenario>(inputs: &[S], fields: usize) -> ColdPath {
    let scalar = measure_cold(inputs, &SweepOptions::default(), fields);
    let columnar = measure_cold(
        inputs,
        &SweepOptions::builder().columnar(Columnar::Exact).build(),
        fields,
    );
    ColdPath { scalar, columnar }
}

fn compare<I, F>(name: &'static str, inputs: &[I], f: F, obs_on: bool) -> WorkloadResult
where
    I: Sync,
    F: Fn(&I) -> u64 + Sync,
{
    // Baseline first so its cold run cannot benefit from v2's caches.
    let baseline = measure(inputs, &f, &SweepOptions::v1_static(), false, obs_on);
    let v2 = measure(inputs, &f, &SweepOptions::default(), true, obs_on);
    WorkloadResult {
        name,
        points: inputs.len(),
        baseline,
        v2,
        trials_per_point: 0,
        cold: None,
    }
}

/// Runs one workload and returns its baseline-vs-v2 comparison.
/// `obs_on` controls span instrumentation (the per-layer breakdown is
/// empty when off).
pub fn run_workload_obs(w: Workload, smoke: bool, obs_on: bool) -> WorkloadResult {
    match w {
        Workload::Hdc => {
            let grid = grid_hdc(smoke);
            let mut r = compare("hdc", &grid, eval_hdc, obs_on);
            r.cold = Some(cold_compare(&grid, 4));
            r
        }
        Workload::Mann => {
            let grid = grid_mann(smoke);
            let mut r = compare("mann", &grid, eval_mann, obs_on);
            r.cold = Some(cold_compare(&grid, 3));
            r
        }
        Workload::Triage => compare("triage", &grid_hdc(smoke), eval_triage, obs_on),
        Workload::Mc => {
            let mut r = compare("mc", &grid_mc(smoke), eval_mc, obs_on);
            r.trials_per_point = MC_TRIALS_PER_POINT;
            r
        }
    }
}

/// [`run_workload_obs`] with instrumentation on.
pub fn run_workload(w: Workload, smoke: bool) -> WorkloadResult {
    run_workload_obs(w, smoke, true)
}

/// Runs the selected workloads (all of them when `which` is empty).
pub fn run(which: &[Workload], smoke: bool, obs_on: bool) -> Vec<WorkloadResult> {
    let list: Vec<Workload> = if which.is_empty() {
        Workload::all().to_vec()
    } else {
        which.to_vec()
    };
    list.into_iter()
        .map(|w| run_workload_obs(w, smoke, obs_on))
        .collect()
}

/// Disabled-vs-enabled instrumentation comparison of one workload's v2
/// path (the `--obs-overhead` mode, gated in CI).
#[derive(Debug, Clone)]
pub struct ObsOverhead {
    /// Workload name.
    pub workload: &'static str,
    /// Number of sweep points.
    pub points: usize,
    /// Spans disabled (the production default); fastest trial.
    pub off: RunStats,
    /// Spans enabled; fastest trial.
    pub on: RunStats,
    /// `on/off − 1` for each interleaved off/on trial pair.
    pub pair_overheads: Vec<f64>,
}

impl ObsOverhead {
    /// Fractional wall-time cost of enabling spans (0.05 = 5% slower):
    /// the median of the interleaved per-pair ratios. Single trials on a
    /// shared 1-core box jitter by ±10% in *both* directions, which rules
    /// out best-of-N floors (an extreme order statistic that inherits the
    /// distribution's tails); the pair median needs half the trials to be
    /// wrong in the same direction before it moves.
    pub fn overhead_frac(&self) -> f64 {
        if self.pair_overheads.is_empty() {
            return self.on.elapsed_s / self.off.elapsed_s - 1.0;
        }
        let mut sorted = self.pair_overheads.clone();
        sorted.sort_by(f64::total_cmp);
        sorted[sorted.len() / 2]
    }

    /// Whether instrumentation left every output bit untouched.
    pub fn checksum_match(&self) -> bool {
        self.off.checksum == self.on.checksum
    }
}

/// Interleaved off/on trial pairs for the overhead gate. Single-trial
/// jitter on a shared 1-core box is ±10% — far above the 5% threshold —
/// so the gate needs enough trials that both best-of-N floors are clean.
const OVERHEAD_TRIALS: usize = 25;

fn overhead_compare<I, F>(name: &'static str, inputs: &[I], f: F) -> ObsOverhead
where
    I: Sync,
    F: Fn(&I) -> u64 + Sync,
{
    let opts = SweepOptions::default();
    // Interleave off/on trials so slow drift (CPU frequency, noisy
    // neighbours) hits both configurations equally instead of biasing
    // whichever ran second; best-of-N then compares the two floors.
    let mut off: Option<RunStats> = None;
    let mut on: Option<RunStats> = None;
    let mut pair_overheads = Vec::with_capacity(OVERHEAD_TRIALS);
    for _ in 0..OVERHEAD_TRIALS {
        let o = measure_once(inputs, &f, &opts, true, false);
        let e = measure_once(inputs, &f, &opts, true, true);
        pair_overheads.push(e.elapsed_s / o.elapsed_s - 1.0);
        if off.as_ref().is_none_or(|b| o.elapsed_s < b.elapsed_s) {
            off = Some(o);
        }
        if on.as_ref().is_none_or(|b| e.elapsed_s < b.elapsed_s) {
            on = Some(e);
        }
    }
    ObsOverhead {
        workload: name,
        points: inputs.len(),
        off: off.expect("OVERHEAD_TRIALS >= 1"),
        on: on.expect("OVERHEAD_TRIALS >= 1"),
        pair_overheads,
    }
}

/// Runs one workload's v2 path with spans off, then on.
///
/// The comparison always uses the full grid, even under `--smoke`: a
/// smoke grid finishes in hundreds of microseconds, where scheduler
/// jitter alone exceeds the 5% overhead gate, while the full grid is a
/// realistic cold sweep that still completes in well under a second.
pub fn run_obs_overhead(w: Workload, _smoke: bool) -> ObsOverhead {
    match w {
        Workload::Hdc => overhead_compare("hdc", &grid_hdc(false), eval_hdc),
        Workload::Mann => overhead_compare("mann", &grid_mann(false), eval_mann),
        Workload::Triage => overhead_compare("triage", &grid_hdc(false), eval_triage),
        Workload::Mc => overhead_compare("mc", &grid_mc(false), eval_mc),
    }
}

pub(crate) fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:.6}");
    } else {
        out.push_str("null");
    }
}

fn push_run(out: &mut String, r: &RunStats) {
    out.push_str("{\"elapsed_s\":");
    push_json_f64(out, r.elapsed_s);
    out.push_str(",\"points_per_sec\":");
    push_json_f64(out, r.points_per_sec);
    let _ = write!(
        out,
        ",\"cache_hits\":{},\"cache_misses\":{},\"cache_hit_rate\":",
        r.cache_hits, r.cache_misses
    );
    push_json_f64(out, r.cache_hit_rate);
    out.push_str(",\"caches\":[");
    for (i, (name, hits, misses, entries)) in r.caches.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"cache\":\"{name}\",\"hits\":{hits},\"misses\":{misses},\"entries\":{entries}}}"
        );
    }
    out.push_str("],\"layers\":[");
    for (i, (name, total_s, self_s, calls)) in r.layers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"layer\":\"{name}\",\"seconds\":");
        push_json_f64(out, *total_s);
        out.push_str(",\"self_seconds\":");
        push_json_f64(out, *self_s);
        let _ = write!(out, ",\"calls\":{calls}}}");
    }
    let _ = write!(out, "],\"checksum\":\"{:016x}\"}}", r.checksum);
}

/// Renders the results as the `BENCH_sweep.json` trajectory document.
///
/// Hand-rolled emission: the vendored `serde` is an offline API shim
/// without derive-based serialization, so the report writes (and the CI
/// gate scans) this fixed schema directly.
pub fn to_json(results: &[WorkloadResult], smoke: bool) -> String {
    to_json_with_store(results, &[], smoke)
}

/// [`to_json`] with the persistent-store arm appended as a
/// `store_arms` array (omitted when empty). Store-arm entries key on
/// `store_workload` rather than `name` so [`scan_after`] lookups cannot
/// collide with the engine-comparison entries.
pub fn to_json_with_store(
    results: &[WorkloadResult],
    store_arms: &[crate::store_bench::StoreArmResult],
    smoke: bool,
) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\":\"xlda-bench-sweep-v1\",\"mode\":\"{}\",\"workloads\":[",
        if smoke { "smoke" } else { "full" }
    );
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"name\":\"{}\",\"points\":{},", r.name, r.points);
        out.push_str("\"baseline\":");
        push_run(&mut out, &r.baseline);
        out.push_str(",\"v2\":");
        push_run(&mut out, &r.v2);
        out.push_str(",\"speedup\":");
        push_json_f64(&mut out, r.speedup());
        if r.trials_per_point > 0 {
            let _ = write!(out, ",\"trials_per_point\":{},", r.trials_per_point);
            out.push_str("\"trials_per_sec\":");
            push_json_f64(&mut out, r.trials_per_sec());
        }
        let _ = write!(out, ",\"checksum_match\":{}", r.checksum_match());
        if let Some(cold) = &r.cold {
            out.push_str(",\"cold_scalar\":");
            push_run(&mut out, &cold.scalar);
            out.push_str(",\"cold_columnar\":");
            push_run(&mut out, &cold.columnar);
            out.push_str(",\"cold_speedup\":");
            push_json_f64(&mut out, cold.speedup());
            let _ = write!(out, ",\"cold_checksum_match\":{}", cold.checksum_match());
        }
        out.push('}');
    }
    out.push(']');
    if !store_arms.is_empty() {
        out.push_str(",\"store_arms\":[");
        for (i, a) in store_arms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::store_bench::push_store_arm(&mut out, a);
        }
        out.push(']');
    }
    out.push_str("}\n");
    out
}

/// Scans `json` for the object following `"name":"<name>"` and returns
/// the numeric value of `field` inside it, if present.
///
/// A deliberate micro-parser: both the baseline file and the report are
/// emitted by this module with fixed key order, so full JSON parsing
/// machinery (which the offline vendor shims do not provide) is not
/// needed for the CI gate.
pub fn scan_field(json: &str, name: &str, field: &str) -> Option<f64> {
    scan_after(json, &format!("\"name\":\"{name}\""), field)
}

/// [`scan_field`] with an explicit anchor string: returns the numeric
/// value of the first `"<field>":` after the first `anchor`. The store
/// arms use this with a `"store_workload"` anchor key so their fields
/// cannot be confused with the engine-comparison entries of the same
/// workload name.
pub fn scan_after(json: &str, anchor: &str, field: &str) -> Option<f64> {
    let start = json.find(anchor)? + anchor.len();
    let rest = &json[start..];
    let key = format!("\"{field}\":");
    let at = rest.find(&key)? + key.len();
    let tail = &rest[at..];
    let end = tail.find([',', '}']).unwrap_or(tail.len());
    tail[..end].trim().parse().ok()
}

/// Gates `results` against a committed baseline document.
///
/// For each workload present in `baseline_json`, fails when v2
/// throughput drops below `(1 - tolerance)` of the recorded
/// `points_per_sec` floor, when the measured speedup falls below a
/// recorded `min_speedup`, or when the two engine paths disagree
/// bit-for-bit. Workloads with a cold arm are additionally gated
/// against `cold_points_per_sec` / `min_cold_speedup` floors and must
/// keep the cold scalar/columnar checksums bit-identical. Every
/// message names the workload *and* the arm that failed. Returns the
/// list of failure messages (empty = pass).
pub fn check_against_baseline(
    results: &[WorkloadResult],
    baseline_json: &str,
    tolerance: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for r in results {
        if !r.checksum_match() {
            failures.push(format!(
                "{} [v1 baseline vs v2 warm]: checksum mismatch ({:016x} vs {:016x})",
                r.name, r.baseline.checksum, r.v2.checksum
            ));
        }
        if let Some(floor) = scan_field(baseline_json, r.name, "points_per_sec") {
            let min = floor * (1.0 - tolerance);
            if r.v2.points_per_sec < min {
                failures.push(format!(
                    "{} [v2 warm]: throughput {:.1} pts/s regressed below {:.1} \
                     (floor {:.1} − {:.0}% tolerance)",
                    r.name,
                    r.v2.points_per_sec,
                    min,
                    floor,
                    tolerance * 100.0
                ));
            }
        }
        if let Some(min_speedup) = scan_field(baseline_json, r.name, "min_speedup") {
            if r.speedup() < min_speedup {
                failures.push(format!(
                    "{} [v2 warm]: speedup {:.2}x below required {:.2}x",
                    r.name,
                    r.speedup(),
                    min_speedup
                ));
            }
        }
        // Gated only for MC workloads: scan_field searches forward from
        // the name anchor, so asking for a key the entry doesn't have
        // would match the next workload's.
        if r.trials_per_point > 0 {
            if let Some(floor) = scan_field(baseline_json, r.name, "trials_per_sec") {
                let min = floor * (1.0 - tolerance);
                if r.trials_per_sec() < min {
                    failures.push(format!(
                        "{} [v2 warm]: {:.0} trials/s regressed below {:.0} \
                         (floor {:.0} − {:.0}% tolerance)",
                        r.name,
                        r.trials_per_sec(),
                        min,
                        floor,
                        tolerance * 100.0
                    ));
                }
            }
        }
        if let Some(cold) = &r.cold {
            if !cold.checksum_match() {
                failures.push(format!(
                    "{} [cold scalar vs cold columnar]: checksum mismatch ({:016x} vs {:016x})",
                    r.name, cold.scalar.checksum, cold.columnar.checksum
                ));
            }
            if let Some(floor) = scan_field(baseline_json, r.name, "cold_points_per_sec") {
                let min = floor * (1.0 - tolerance);
                if cold.columnar.points_per_sec < min {
                    failures.push(format!(
                        "{} [columnar cold]: throughput {:.1} pts/s regressed below {:.1} \
                         (floor {:.1} − {:.0}% tolerance)",
                        r.name,
                        cold.columnar.points_per_sec,
                        min,
                        floor,
                        tolerance * 100.0
                    ));
                }
            }
            if let Some(min_speedup) = scan_field(baseline_json, r.name, "min_cold_speedup") {
                if cold.speedup() < min_speedup {
                    failures.push(format!(
                        "{} [columnar cold]: cold speedup {:.2}x below required {:.2}x",
                        r.name,
                        cold.speedup(),
                        min_speedup
                    ));
                }
            }
        }
    }
    failures
}

/// Prints a human-readable comparison table.
pub fn print(results: &[WorkloadResult]) {
    println!("sweep engine: v1 (static, no memo) vs v2 (work-stealing + memo)");
    crate::rule(92);
    println!(
        "{:>8} {:>7} {:>12} {:>12} {:>9} {:>10} {:>9} {:>10}",
        "workload", "points", "v1 pts/s", "v2 pts/s", "speedup", "hit rate", "entries", "identical"
    );
    for r in results {
        let entries: u64 = r.v2.caches.iter().map(|c| c.3).sum();
        println!(
            "{:>8} {:>7} {:>12.1} {:>12.1} {:>8.2}x {:>9.1}% {:>9} {:>10}",
            r.name,
            r.points,
            r.baseline.points_per_sec,
            r.v2.points_per_sec,
            r.speedup(),
            r.v2.cache_hit_rate * 100.0,
            entries,
            if r.checksum_match() { "yes" } else { "NO" },
        );
    }
    for r in results {
        if r.trials_per_point > 0 {
            println!(
                "{:>8} {} MC trials/point -> {:.0} trials/s (v2)",
                r.name,
                r.trials_per_point,
                r.trials_per_sec()
            );
        }
    }
    for r in results {
        if let Some(cold) = &r.cold {
            println!(
                "{:>8} cold path (memo off): scalar {:.1} pts/s -> columnar {:.1} pts/s \
                 ({:.2}x, {})",
                r.name,
                cold.scalar.points_per_sec,
                cold.columnar.points_per_sec,
                cold.speedup(),
                if cold.checksum_match() {
                    "bit-identical"
                } else {
                    "CHECKSUMS DIFFER"
                },
            );
        }
    }
    println!();
    for r in results {
        if r.v2.layers.is_empty() {
            continue;
        }
        // Percentages are of total span-covered time (the summed
        // self-times), which equals the roots' total time by telescoping.
        let covered: f64 = r.v2.layers.iter().map(|l| l.2).sum();
        println!("{} v2 per-layer self time:", r.name);
        for (name, total_s, self_s, calls) in &r.v2.layers {
            println!(
                "  {:>24} self {:>10} ({:>5.1}%)  total {:>10}  {calls} calls",
                name,
                crate::fmt_time(*self_s),
                100.0 * self_s / covered.max(1e-12),
                crate::fmt_time(*total_s),
            );
        }
    }
}

/// Prints the `--obs-overhead` comparison.
pub fn print_obs_overhead(o: &ObsOverhead) {
    println!(
        "obs overhead: {} ({} points, v2 path)",
        o.workload, o.points
    );
    crate::rule(64);
    println!(
        "  spans off: {:>10}  ({:.1} pts/s)",
        crate::fmt_time(o.off.elapsed_s),
        o.off.points_per_sec
    );
    println!(
        "  spans on:  {:>10}  ({:.1} pts/s)",
        crate::fmt_time(o.on.elapsed_s),
        o.on.points_per_sec
    );
    println!(
        "  overhead:  {:+.2}%  (median of {} interleaved pairs)   checksums {}",
        o.overhead_frac() * 100.0,
        o.pair_overheads.len(),
        if o.checksum_match() {
            "bit-identical"
        } else {
            "DIFFER"
        }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that run workloads: each measurement toggles the
    /// process-global memo and span switches, which must not race a
    /// concurrent test.
    static MEMO_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn triage_smoke_is_transparent_and_faster() {
        let _guard = MEMO_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let r = run_workload(Workload::Triage, true);
        assert_eq!(r.points, 8);
        assert!(
            r.checksum_match(),
            "memoized sweep must be bit-identical: {:016x} vs {:016x}",
            r.baseline.checksum,
            r.v2.checksum
        );
        assert!(r.v2.cache_hits > 0, "caches must engage");
        assert!(r.baseline.cache_hits == 0, "baseline must not memoize");
        assert!(r.speedup() > 1.0, "speedup {:.2}", r.speedup());
    }

    #[test]
    fn layer_breakdown_accounts_for_wall_time() {
        let _guard = MEMO_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Single-threaded so span-covered time is comparable to wall
        // time (with N workers the spans sum to ~N× wall).
        let inputs = grid_hdc(true);
        let opts = SweepOptions::builder().threads(1).build();
        let run = measure_once(&inputs, eval_triage, &opts, true, true);
        let self_sum: f64 = run.layers.iter().map(|l| l.2).sum();
        assert!(
            self_sum >= 0.9 * run.elapsed_s,
            "per-layer self time {self_sum:.6}s must cover >=90% of wall {:.6}s",
            run.elapsed_s
        );
        for expected in ["sweep.point", "evacam.report", "crossbar"] {
            assert!(
                run.layers.iter().any(|l| l.0 == expected),
                "breakdown missing span {expected}: {:?}",
                run.layers.iter().map(|l| &l.0).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn obs_overhead_is_transparent() {
        let _guard = MEMO_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let o = run_obs_overhead(Workload::Triage, true);
        assert!(
            o.checksum_match(),
            "instrumentation must not change outputs: {:016x} vs {:016x}",
            o.off.checksum,
            o.on.checksum
        );
        assert!(o.off.layers.is_empty(), "disabled run must record no spans");
        assert!(!o.on.layers.is_empty(), "enabled run must record spans");
    }

    #[test]
    fn mc_smoke_is_deterministic_across_engine_paths() {
        let _guard = MEMO_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let r = run_workload(Workload::Mc, true);
        assert_eq!(r.trials_per_point, MC_TRIALS_PER_POINT);
        // The two arms differ in schedule and memoization; identical
        // checksums here are the chunking-determinism gate.
        assert!(
            r.checksum_match(),
            "MC results must be schedule-invariant: {:016x} vs {:016x}",
            r.baseline.checksum,
            r.v2.checksum
        );
        assert!(r.trials_per_sec() > 0.0);
        let json = to_json(std::slice::from_ref(&r), true);
        assert_eq!(
            scan_field(&json, "mc", "trials_per_point").map(|p| p as usize),
            Some(MC_TRIALS_PER_POINT)
        );
        let tps = scan_field(&json, "mc", "trials_per_sec").expect("trials_per_sec in report");
        assert!((tps - r.trials_per_sec()).abs() < 1.0);
        // The trials_per_sec floor gates like points_per_sec does.
        let impossible = "{\"name\":\"mc\",\"trials_per_sec\":1e15}";
        let failures = check_against_baseline(std::slice::from_ref(&r), impossible, 0.3);
        assert!(
            failures.iter().any(|f| f.contains("trials/s")),
            "{failures:?}"
        );
    }

    #[test]
    fn json_roundtrips_through_scanner() {
        let _guard = MEMO_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let r = run_workload(Workload::Mann, true);
        let json = to_json(std::slice::from_ref(&r), true);
        let pps = scan_field(&json, "mann", "points_per_sec").expect("scan v2 pts/s");
        // First points_per_sec after the name anchor is the baseline's.
        assert!((pps - r.baseline.points_per_sec).abs() < 1e-3);
        assert_eq!(
            scan_field(&json, "mann", "points").map(|p| p as usize),
            Some(r.points)
        );
        assert!(scan_field(&json, "absent", "points_per_sec").is_none());
    }

    #[test]
    fn cold_columnar_arm_is_bit_identical_and_gated() {
        let _guard = MEMO_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let r = run_workload(Workload::Hdc, true);
        let cold = r.cold.as_ref().expect("hdc carries a cold arm");
        assert!(
            cold.checksum_match(),
            "columnar kernels must be bit-identical to the cold scalar path: \
             {:016x} vs {:016x}",
            cold.scalar.checksum,
            cold.columnar.checksum
        );
        // fold_batch mirrors the scalar eval closures' structure, so the
        // cold checksums also match the warm arms' over the same grid.
        assert_eq!(cold.scalar.checksum, r.baseline.checksum);
        assert_eq!(cold.scalar.cache_hits, 0, "cold arms must not memoize");
        assert_eq!(cold.columnar.cache_hits, 0, "cold arms must not memoize");
        let json = to_json(std::slice::from_ref(&r), true);
        assert!(scan_field(&json, "hdc", "cold_speedup").is_some());
        assert!(json.contains("\"cold_checksum_match\":true"), "{json}");
        // Cold floors gate like the warm ones, with arm-labeled messages.
        let impossible = "{\"name\":\"hdc\",\"cold_points_per_sec\":1e15,\"min_cold_speedup\":1e9}";
        let failures = check_against_baseline(std::slice::from_ref(&r), impossible, 0.3);
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures[0].contains("hdc [columnar cold]") && failures[0].contains("regressed"));
        assert!(failures[1].contains("cold speedup"));
    }

    #[test]
    fn baseline_gate_catches_regressions() {
        let _guard = MEMO_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let r = run_workload(Workload::Hdc, true);
        let generous = format!("{{\"name\":\"hdc\",\"points_per_sec\":{:.3}}}", 1e-6);
        assert!(check_against_baseline(std::slice::from_ref(&r), &generous, 0.3).is_empty());
        let impossible =
            "{\"name\":\"hdc\",\"points_per_sec\":1e15,\"min_speedup\":1e9}".to_string();
        let failures = check_against_baseline(&[r], &impossible, 0.3);
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures[0].contains("regressed"));
        assert!(failures[1].contains("speedup"));
    }
}
