//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (see DESIGN.md §3 for the experiment index).
//!
//! Each experiment lives in its own module with a `run(quick)` entry
//! point that executes the underlying simulations and returns structured
//! results; the `src/bin/fig*.rs` binaries call `run(false)` and print
//! the series/rows the paper reports. `quick = true` shrinks Monte-Carlo
//! budgets for integration tests.
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `fig3c` | HDC accuracy vs HV element precision |
//! | `fig3d` | FeFET CAM-cell conductance vs voltage deviation |
//! | `fig3e` | Search share of end-to-end HDC runtime |
//! | `fig3f` | Accuracy vs HV length × CAM subarray size |
//! | `fig3g` | V_th state overlap and accuracy vs programming sigma |
//! | `fig3h` | Inference latency across platforms at iso-accuracy |
//! | `fig4c` | TLSH suppression of unstable hash bits |
//! | `fig4d` | Correlation of hash distance with cosine distance |
//! | `fig4e` | Few-shot accuracy vs hash length + latency advantage |
//! | `fig5`  | Eva-CAM validation vs published chips |
//! | `secv_speedup` | System-level crossbar offload speedup (Sec. V) |
//! | `fig6_triage`  | Top-down triage and device-lever ranking (Sec. VII) |
//! | `nvram_sweep`  | RAM-lane FOM sweep (Sec. VI tooling) |
//! | `ablations`    | design-choice ablations (DESIGN.md §4) |
//! | `extensions`   | the paper's proposed enhancements (Secs. VI-VII) |

pub mod ablations;
pub mod extensions;
pub mod fig3c;
pub mod fig3d;
pub mod fig3e;
pub mod fig3f;
pub mod fig3g;
pub mod fig3h;
pub mod fig4c;
pub mod fig4d;
pub mod fig4e;
pub mod fig5;
pub mod fig6_triage;
pub mod flight_bench;
pub mod loadgen;
pub mod nvram_sweep;
pub mod secv_speedup;
pub mod store_bench;
pub mod sweep_bench;

use xlda_datagen::ClassificationSpec;

/// The "hard" ISOLET-like dataset used by the Fig. 3 accuracy sweeps.
///
/// The stock preset is nearly saturating; raising the intra-class noise
/// moves the operating point to where precision/aggregation/variation
/// effects are visible — the regime the paper's figures live in.
pub fn hard_isolet(quick: bool) -> xlda_datagen::Dataset {
    hard_isolet_with(4.0, quick)
}

/// [`hard_isolet`] with an explicit noise level, for experiments that
/// need a different operating point on the accuracy curve.
pub fn hard_isolet_with(noise: f64, quick: bool) -> xlda_datagen::Dataset {
    let mut spec = ClassificationSpec::isolet_like();
    spec.noise = noise;
    // Small-sample training in both modes: HDC's motivating regime
    // ("can learn by looking at a small number of training images") and
    // the operating point where precision/variation effects are visible.
    spec.train_per_class = 20;
    spec.test_per_class = if quick { 8 } else { 20 };
    spec.generate()
}

/// Formats seconds with an engineering unit.
pub fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.3} ns", s * 1e9)
    }
}

/// Formats joules with an engineering unit.
pub fn fmt_energy(j: f64) -> String {
    if j >= 1.0 {
        format!("{j:.3} J")
    } else if j >= 1e-3 {
        format!("{:.3} mJ", j * 1e3)
    } else if j >= 1e-6 {
        format!("{:.3} µJ", j * 1e6)
    } else if j >= 1e-9 {
        format!("{:.3} nJ", j * 1e9)
    } else {
        format!("{:.3} pJ", j * 1e12)
    }
}

/// Prints a rule line for table output.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_units() {
        assert_eq!(fmt_time(2.5e-9), "2.500 ns");
        assert_eq!(fmt_time(2.5e-6), "2.500 µs");
        assert_eq!(fmt_energy(270e-12), "270.000 pJ");
    }

    #[test]
    fn hard_isolet_is_hard_but_learnable() {
        let d = hard_isolet(true);
        let acc = d.centroid_accuracy();
        assert!(acc > 0.5 && acc < 0.999, "accuracy {acc}");
    }
}
