//! Persistent result-store benchmark arm and the `--store-smoke`
//! crash-recovery gate.
//!
//! The store's performance claim is about *restarts*: a sweep that
//! already ran — in a previous process — should replay as pure digest
//! lookups. Each workload therefore measures two regimes on the same
//! grid:
//!
//! - **cold** — the store file is deleted and recreated, so every point
//!   is a miss + engine evaluation + append (the store's worst case,
//!   also covering its write overhead);
//! - **warm** — the store is *reopened from disk* (a fresh
//!   [`ResultStore`] instance per trial, simulating a process restart)
//!   and the memo caches are cleared, so the measured speed comes only
//!   from the persistent store, not from warm derivation caches.
//!
//! Both regimes fold every output bit into one checksum; `warm` must be
//! bit-identical to `cold` and must resolve every point as a hit. The
//! `--store-smoke` mode runs the same comparison across two *processes*
//! with a CI-injected torn tail in between (see `.github/workflows`).

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use crate::sweep_bench::{
    grid_hdc, grid_mann, grid_mc, push_json_f64, scan_after, scan_field, Workload, FNV_OFFSET,
    FNV_PRIME,
};
use xlda_core::evaluate::{Evaluation, Scenario};
use xlda_core::store::{LoadReport, ResultStore};
use xlda_core::sweep::memo;
use xlda_core::triage::{rank, Objective};

/// Measurements of one regime (cold or restart-warm) over one workload.
#[derive(Debug, Clone)]
pub struct ArmStats {
    /// Wall time of the fastest trial (s).
    pub elapsed_s: f64,
    /// Points resolved per second (fastest trial).
    pub points_per_sec: f64,
    /// Store hits during the fastest trial.
    pub hits: u64,
    /// Store misses during the fastest trial.
    pub misses: u64,
    /// Order-sensitive FNV fold of every output bit pattern.
    pub checksum: u64,
}

/// One workload's cold-vs-restart-warm store comparison.
#[derive(Debug, Clone)]
pub struct StoreArmResult {
    /// Workload name.
    pub name: &'static str,
    /// Number of grid points.
    pub points: usize,
    /// Fresh store file: miss + evaluate + append per point.
    pub cold: ArmStats,
    /// Store reopened from disk per trial, memo caches cleared.
    pub warm: ArmStats,
}

impl StoreArmResult {
    /// Throughput ratio of the restart-warm pass over the cold pass.
    pub fn warm_speedup(&self) -> f64 {
        self.warm.points_per_sec / self.cold.points_per_sec
    }

    /// Fraction of warm-pass points resolved as store hits. The gate
    /// requires exactly 1.0: a single miss means a digest failed to
    /// survive the disk round trip.
    pub fn warm_hit_rate(&self) -> f64 {
        let total = self.warm.hits + self.warm.misses;
        if total == 0 {
            0.0
        } else {
            self.warm.hits as f64 / total as f64
        }
    }

    /// Whether the warm pass reproduced the cold pass bit-for-bit.
    pub fn checksum_match(&self) -> bool {
        self.cold.checksum == self.warm.checksum
    }
}

/// Folds one evaluation's full bit content (candidate FOMs plus
/// Monte-Carlo distribution summaries) — the uniform checksum both
/// regimes use, unlike the engine comparison's per-workload folds.
fn fold_eval(h: u64, r: &Result<Evaluation, xlda_core::XldaError>) -> u64 {
    let fold = |h: u64, bits: u64| (h ^ bits).wrapping_mul(FNV_PRIME);
    match r {
        Ok(ev) => {
            let mut h = h;
            for c in &ev.candidates {
                for v in [
                    c.fom.latency_s,
                    c.fom.energy_j,
                    c.fom.area_mm2,
                    c.fom.accuracy,
                ] {
                    h = fold(h, v.to_bits());
                }
            }
            for d in &ev.distributions {
                for v in [
                    d.summary.mean,
                    d.summary.std_dev,
                    d.summary.min,
                    d.summary.max,
                    d.summary.p5,
                    d.summary.p50,
                    d.summary.p95,
                    d.yield_fraction,
                ] {
                    h = fold(h, v.to_bits());
                }
                h = fold(h, d.checksum);
            }
            h
        }
        Err(_) => fold(h, FNV_PRIME), // error marker, identical in both regimes
    }
}

/// The triage workload ranks each point's candidates under both paper
/// objectives on top of the evaluation, so the warm pass proves the
/// whole triage loop — not just raw evaluation — replays from the store.
fn fold_triage(h: u64, r: &Result<Evaluation, xlda_core::XldaError>) -> u64 {
    let mut h = fold_eval(h, r);
    if let Ok(ev) = r {
        for obj in [
            Objective::latency_first(Some(0.9)),
            Objective::energy_first(Some(0.9)),
        ] {
            for ranked in rank(&ev.candidates, &obj) {
                h = (h ^ ranked.score.to_bits()).wrapping_mul(FNV_PRIME);
            }
        }
    }
    h
}

/// Timing trials per regime; the fastest is reported (same rationale as
/// the engine comparison's best-of-N).
const TRIALS: usize = 3;

/// One timed pass: resolves every scenario through the store in grid
/// order and folds the outputs.
fn pass<S: Scenario>(
    scenarios: &[S],
    store: &ResultStore,
    fold: impl Fn(u64, &Result<Evaluation, xlda_core::XldaError>) -> u64,
) -> ArmStats {
    // Cleared memo caches isolate what is being measured: cold pays the
    // full evaluation price, warm speed comes only from the store.
    memo::clear_all();
    let before = store.stats();
    let started = Instant::now();
    let mut checksum = FNV_OFFSET;
    for s in scenarios {
        checksum = fold(checksum, &store.evaluate_cached(s));
    }
    let elapsed = started.elapsed().as_secs_f64();
    let after = store.stats();
    ArmStats {
        elapsed_s: elapsed,
        points_per_sec: scenarios.len() as f64 / elapsed.max(1e-12),
        hits: after.hits - before.hits,
        misses: after.misses - before.misses,
        checksum,
    }
}

fn compare_store<S: Scenario>(
    name: &'static str,
    scenarios: &[S],
    path: &Path,
    fold: impl Fn(u64, &Result<Evaluation, xlda_core::XldaError>) -> u64 + Copy,
) -> StoreArmResult {
    let mut cold: Option<ArmStats> = None;
    for _ in 0..TRIALS {
        // A deleted file per trial keeps every cold trial honestly
        // cold; the last trial leaves the file populated for warm.
        let _ = std::fs::remove_file(path);
        let store = ResultStore::open(path).expect("open store for cold trial");
        let run = pass(scenarios, &store, fold);
        store.flush();
        if cold.as_ref().is_none_or(|b| run.elapsed_s < b.elapsed_s) {
            cold = Some(run);
        }
    }
    let mut warm: Option<ArmStats> = None;
    for _ in 0..TRIALS {
        // A fresh instance per trial replays the segment file from
        // disk — the restart the store exists for.
        let store = ResultStore::open(path).expect("reopen store for warm trial");
        let run = pass(scenarios, &store, fold);
        if warm.as_ref().is_none_or(|b| run.elapsed_s < b.elapsed_s) {
            warm = Some(run);
        }
    }
    StoreArmResult {
        name,
        points: scenarios.len(),
        cold: cold.expect("TRIALS >= 1"),
        warm: warm.expect("TRIALS >= 1"),
    }
}

/// Runs one workload's store arm against the segment file at `path`
/// (created, repopulated, and left on disk).
pub fn run_store_arm(w: Workload, smoke: bool, path: &Path) -> StoreArmResult {
    match w {
        Workload::Hdc => compare_store("hdc", &grid_hdc(smoke), path, fold_eval),
        Workload::Mann => compare_store("mann", &grid_mann(smoke), path, fold_eval),
        Workload::Triage => compare_store("triage", &grid_hdc(smoke), path, fold_triage),
        Workload::Mc => compare_store("mc", &grid_mc(smoke), path, fold_eval),
    }
}

/// Runs the selected workloads' store arms (all when `which` is empty)
/// on a scratch file that is removed afterwards.
pub fn run_store_arms(which: &[Workload], smoke: bool) -> Vec<StoreArmResult> {
    let list: Vec<Workload> = if which.is_empty() {
        Workload::all().to_vec()
    } else {
        which.to_vec()
    };
    let mut path = std::env::temp_dir();
    path.push(format!("xlda_bench_store_{}.bin", std::process::id()));
    let out = list
        .into_iter()
        .map(|w| run_store_arm(w, smoke, &path))
        .collect();
    let _ = std::fs::remove_file(&path);
    out
}

/// Serializes one store arm into the `BENCH_sweep.json` report.
pub(crate) fn push_store_arm(out: &mut String, a: &StoreArmResult) {
    let _ = write!(
        out,
        "{{\"store_workload\":\"{}\",\"points\":{},\"cold_points_per_sec\":",
        a.name, a.points
    );
    push_json_f64(out, a.cold.points_per_sec);
    out.push_str(",\"warm_points_per_sec\":");
    push_json_f64(out, a.warm.points_per_sec);
    out.push_str(",\"warm_speedup\":");
    push_json_f64(out, a.warm_speedup());
    out.push_str(",\"warm_hit_rate\":");
    push_json_f64(out, a.warm_hit_rate());
    let _ = write!(
        out,
        ",\"warm_hits\":{},\"warm_misses\":{},\"cold_checksum\":\"{:016x}\",\"checksum_match\":{}}}",
        a.warm.hits,
        a.warm.misses,
        a.cold.checksum,
        a.checksum_match()
    );
}

/// Gates the store arms: bit-exact warm replay, hit rate exactly 1.0,
/// and per-workload `store_min_warm_speedup` floors from the committed
/// baseline (a ratio, so no machine tolerance applies).
pub fn check_store_baseline(arms: &[StoreArmResult], baseline_json: &str) -> Vec<String> {
    let mut failures = Vec::new();
    for a in arms {
        if !a.checksum_match() {
            failures.push(format!(
                "store/{}: warm replay changed bits ({:016x} vs {:016x})",
                a.name, a.cold.checksum, a.warm.checksum
            ));
        }
        let min_hit_rate =
            scan_after(baseline_json, "\"store\":", "min_warm_hit_rate").unwrap_or(1.0);
        if a.warm_hit_rate() < min_hit_rate {
            failures.push(format!(
                "store/{}: warm hit rate {:.4} below {:.4} ({} misses after restart)",
                a.name,
                a.warm_hit_rate(),
                min_hit_rate,
                a.warm.misses
            ));
        }
        if let Some(floor) = scan_field(baseline_json, a.name, "store_min_warm_speedup") {
            if a.warm_speedup() < floor {
                failures.push(format!(
                    "store/{}: restart-warm speedup {:.2}x below required {:.2}x",
                    a.name,
                    a.warm_speedup(),
                    floor
                ));
            }
        }
    }
    failures
}

/// Prints the store-arm comparison table.
pub fn print_store_arms(arms: &[StoreArmResult]) {
    if arms.is_empty() {
        return;
    }
    println!("\nresult store: cold (evaluate + append) vs restart-warm (disk replay)");
    crate::rule(86);
    println!(
        "{:>8} {:>7} {:>13} {:>13} {:>9} {:>9} {:>10}",
        "workload", "points", "cold pts/s", "warm pts/s", "speedup", "hit rate", "identical"
    );
    for a in arms {
        println!(
            "{:>8} {:>7} {:>13.1} {:>13.1} {:>8.2}x {:>8.1}% {:>10}",
            a.name,
            a.points,
            a.cold.points_per_sec,
            a.warm.points_per_sec,
            a.warm_speedup(),
            a.warm_hit_rate() * 100.0,
            if a.checksum_match() { "yes" } else { "NO" },
        );
    }
}

// ---------------------------------------------------------------------------
// --store-smoke: the cross-process crash-recovery gate
// ---------------------------------------------------------------------------

/// One `--store-smoke` pass (one process, one regime).
#[derive(Debug, Clone)]
pub struct StoreSmokeReport {
    /// `"cold"` (fresh store file) or `"warm"` (reopened, post-crash).
    pub mode: &'static str,
    /// What replaying the segment file found on open.
    pub load: LoadReport,
    /// Per-workload passes, in [`Workload::all`] order.
    pub workloads: Vec<SmokeWorkload>,
}

/// One workload inside a `--store-smoke` pass.
#[derive(Debug, Clone)]
pub struct SmokeWorkload {
    /// Workload name.
    pub name: &'static str,
    /// Number of grid points.
    pub points: usize,
    /// Store hits while resolving this workload.
    pub hits: u64,
    /// Store misses while resolving this workload.
    pub misses: u64,
    /// Points resolved per second.
    pub points_per_sec: f64,
    /// Uniform output checksum (must match across processes).
    pub checksum: u64,
}

impl StoreSmokeReport {
    /// Hit rate across every workload of the pass.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = self
            .workloads
            .iter()
            .fold((0u64, 0u64), |(h, m), w| (h + w.hits, m + w.misses));
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

/// Runs one `--store-smoke` pass over every workload. `cold` deletes
/// the store file first; warm opens whatever the previous process (and
/// any CI-injected corruption) left behind.
pub fn run_store_smoke(smoke: bool, path: &Path, cold: bool) -> StoreSmokeReport {
    if cold {
        let _ = std::fs::remove_file(path);
    }
    let store = ResultStore::open(path).expect("open store");
    let load = store.load_report();
    let mut workloads = Vec::new();
    for w in Workload::all() {
        let run = match w {
            Workload::Hdc => pass(&grid_hdc(smoke), &store, fold_eval),
            Workload::Mann => pass(&grid_mann(smoke), &store, fold_eval),
            Workload::Triage => pass(&grid_hdc(smoke), &store, fold_triage),
            Workload::Mc => pass(&grid_mc(smoke), &store, fold_eval),
        };
        workloads.push(SmokeWorkload {
            name: w.name(),
            points: match w {
                Workload::Hdc | Workload::Triage => grid_hdc(smoke).len(),
                Workload::Mann => grid_mann(smoke).len(),
                Workload::Mc => grid_mc(smoke).len(),
            },
            hits: run.hits,
            misses: run.misses,
            points_per_sec: run.points_per_sec,
            checksum: run.checksum,
        });
    }
    store.flush();
    StoreSmokeReport {
        mode: if cold { "cold" } else { "warm" },
        load,
        workloads,
    }
}

/// Renders the `--store-smoke` report (`xlda-bench-store-v1`).
pub fn smoke_to_json(r: &StoreSmokeReport, path: &Path) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\":\"xlda-bench-store-v1\",\"mode\":\"{}\",\"store_path\":{:?},\
         \"recovered_records\":{},\"truncated_bytes\":{},\"reset\":{},\"hit_rate\":",
        r.mode,
        path.display().to_string(),
        r.load.recovered_records,
        r.load.truncated_bytes,
        r.load.reset,
    );
    push_json_f64(&mut out, r.hit_rate());
    out.push_str(",\"workloads\":[");
    for (i, w) in r.workloads.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"store_workload\":\"{}\",\"points\":{},\"hits\":{},\"misses\":{},\
             \"points_per_sec\":",
            w.name, w.points, w.hits, w.misses
        );
        push_json_f64(&mut out, w.points_per_sec);
        let _ = write!(out, ",\"checksum\":\"{:016x}\"}}", w.checksum);
    }
    out.push_str("]}\n");
    out
}

/// Scans one workload's checksum string out of a `--store-smoke` report.
fn scan_checksum(json: &str, name: &str) -> Option<String> {
    let anchor = format!("\"store_workload\":\"{name}\"");
    let start = json.find(&anchor)? + anchor.len();
    let rest = &json[start..];
    let key = "\"checksum\":\"";
    let at = rest.find(key)? + key.len();
    let tail = &rest[at..];
    Some(tail[..tail.find('"')?].to_string())
}

/// Gates a warm `--store-smoke` pass against the cold pass's report
/// (from the previous process): result-level hit rate must be exactly
/// 1.0 and every workload checksum must match bit-for-bit.
pub fn verify_store_smoke(warm: &StoreSmokeReport, cold_json: &str) -> Vec<String> {
    let mut failures = Vec::new();
    if warm.hit_rate() < 1.0 {
        failures.push(format!(
            "store-smoke: warm hit rate {:.4} != 1.0 — the persisted store did not \
             resolve every repeated point",
            warm.hit_rate()
        ));
    }
    for w in &warm.workloads {
        match scan_checksum(cold_json, w.name) {
            Some(cold) => {
                let ours = format!("{:016x}", w.checksum);
                if ours != cold {
                    failures.push(format!(
                        "store-smoke/{}: warm checksum {ours} != cold {cold}",
                        w.name
                    ));
                }
            }
            None => failures.push(format!(
                "store-smoke/{}: cold report has no checksum for this workload",
                w.name
            )),
        }
    }
    failures
}

/// Prints one `--store-smoke` pass.
pub fn print_store_smoke(r: &StoreSmokeReport) {
    println!(
        "store smoke ({}): {} records recovered, {} torn bytes truncated{}",
        r.mode,
        r.load.recovered_records,
        r.load.truncated_bytes,
        if r.load.reset { ", file reset" } else { "" },
    );
    crate::rule(72);
    for w in &r.workloads {
        println!(
            "{:>8} {:>5} points  {:>6} hits {:>6} misses  {:>12.1} pts/s  {:016x}",
            w.name, w.points, w.hits, w.misses, w.points_per_sec, w.checksum
        );
    }
    println!("overall hit rate: {:.4}", r.hit_rate());
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Store-arm measurements clear the process-global memo caches;
    /// serialize with the sweep-bench tests that toggle the same state.
    static MEMO_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn tmp(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "xlda_store_bench_{}_{}.bin",
            std::process::id(),
            tag
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn store_arm_warm_pass_is_all_hits_and_bit_exact() {
        let _guard = MEMO_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let path = tmp("arm");
        let a = run_store_arm(Workload::Hdc, true, &path);
        assert_eq!(a.points, 8);
        assert!(a.checksum_match(), "warm replay must be bit-identical");
        assert_eq!(a.warm_hit_rate(), 1.0, "warm pass must be pure lookups");
        assert_eq!(a.warm.misses, 0);
        assert_eq!(a.cold.hits, 0, "cold pass must start from an empty store");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn store_arm_json_and_gate_round_trip() {
        let _guard = MEMO_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let path = tmp("gate");
        let a = run_store_arm(Workload::Triage, true, &path);
        let json = crate::sweep_bench::to_json_with_store(&[], std::slice::from_ref(&a), true);
        let speedup = scan_after(&json, "\"store_workload\":\"triage\"", "warm_speedup")
            .expect("warm_speedup in report");
        assert!((speedup - a.warm_speedup()).abs() < 1e-3);
        assert!(json.contains("\"checksum_match\":true"), "{json}");
        // A satisfiable baseline passes; an impossible floor fails.
        let ok = "{\"name\":\"triage\",\"store_min_warm_speedup\":0.001},\"store\":{\"min_warm_hit_rate\":1.0}";
        assert_eq!(
            check_store_baseline(std::slice::from_ref(&a), ok),
            Vec::<String>::new()
        );
        let bad = "{\"name\":\"triage\",\"store_min_warm_speedup\":1e9}";
        let failures = check_store_baseline(std::slice::from_ref(&a), bad);
        assert!(
            failures.iter().any(|f| f.contains("speedup")),
            "{failures:?}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn store_smoke_warm_process_verifies_against_cold_report() {
        let _guard = MEMO_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let path = tmp("smoke");
        let cold = run_store_smoke(true, &path, true);
        assert_eq!(cold.mode, "cold");
        // The first workload starts from an empty file, so it is all
        // misses; later workloads may legitimately hit (triage shares
        // the hdc grid), so the overall rate is merely below 1.0.
        assert_eq!(
            cold.workloads[0].hits, 0,
            "first cold workload is all misses"
        );
        assert!(cold.hit_rate() < 1.0);
        let cold_json = smoke_to_json(&cold, &path);
        // Simulate the CI torn-tail injection between the processes.
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .expect("append garbage");
        f.write_all(&[0x2c, 0x00, 0x00, 0x00, 0xde, 0xad])
            .expect("write");
        drop(f);
        let warm = run_store_smoke(true, &path, false);
        assert!(warm.load.truncated_bytes >= 6, "{:?}", warm.load);
        assert_eq!(warm.hit_rate(), 1.0, "warm pass must be pure lookups");
        assert_eq!(verify_store_smoke(&warm, &cold_json), Vec::<String>::new());
        // A doctored cold report fails the gate.
        let doctored = cold_json.replace(
            &format!("{:016x}", cold.workloads[0].checksum),
            "0000000000000000",
        );
        let failures = verify_store_smoke(&warm, &doctored);
        assert!(
            failures.iter().any(|f| f.contains("checksum")),
            "{failures:?}"
        );
        let _ = std::fs::remove_file(&path);
    }
}
