//! Regenerates the extensions table; see `xlda_bench::extensions`.

fn main() {
    let result = xlda_bench::extensions::run(false);
    xlda_bench::extensions::print(&result);
}
