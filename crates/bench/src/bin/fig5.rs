//! Regenerates the paper artifact; see `xlda_bench::fig5`.

fn main() {
    let result = xlda_bench::fig5::run(false);
    xlda_bench::fig5::print(&result);
}
