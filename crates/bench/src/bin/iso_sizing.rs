//! Automates the Fig. 3H iso-accuracy sizing step: for each cell
//! precision, find the smallest hypervector dimension matching the
//! full-precision software reference (within tolerance).

use xlda_bench::hard_isolet;
use xlda_hdc::codesign::{iso_accuracy_table, SizingConfig};

fn main() {
    let data = hard_isolet(false);
    let config = SizingConfig {
        min_dim: 256,
        max_dim: 8192,
        ..SizingConfig::default()
    };
    let (reference, results) = iso_accuracy_table(&data, &[1, 2, 3, 4], 4096, 0.05, &config);
    println!(
        "iso-accuracy HV sizing (software reference {:.1}% at D=4096, tolerance 5 pts)",
        reference * 100.0
    );
    println!("{:>6} {:>10} {:>10}", "bits", "min D", "accuracy");
    for r in results {
        match r.hv_dim {
            Some(d) => println!("{:>6} {:>10} {:>9.1}%", r.bits, d, r.accuracy * 100.0),
            None => println!(
                "{:>6} {:>10} {:>9.1}%  (never reaches target)",
                r.bits,
                "-",
                r.accuracy * 100.0
            ),
        }
    }
}
