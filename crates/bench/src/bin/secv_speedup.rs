//! Regenerates the paper artifact; see `xlda_bench::secv_speedup`.

fn main() {
    let result = xlda_bench::secv_speedup::run(false);
    xlda_bench::secv_speedup::print(&result);
}
