//! Regenerates the paper artifact; see `xlda_bench::fig4d`.

fn main() {
    let result = xlda_bench::fig4d::run(false);
    xlda_bench::fig4d::print(&result);
}
