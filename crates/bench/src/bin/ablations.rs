//! Regenerates the design-choice ablation table; see `xlda_bench::ablations`.

fn main() {
    let result = xlda_bench::ablations::run(false);
    xlda_bench::ablations::print(&result);
}
