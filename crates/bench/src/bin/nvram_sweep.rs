//! Regenerates the paper artifact; see `xlda_bench::nvram_sweep`.

fn main() {
    let result = xlda_bench::nvram_sweep::run(false);
    xlda_bench::nvram_sweep::print(&result);
}
