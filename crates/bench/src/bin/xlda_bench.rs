//! `xlda-bench` — sweep-engine benchmark harness and CI throughput gate.
//!
//! Runs the fixed HDC/MANN/triage/MC sweep workloads, comparing the v1
//! engine path (static chunking, no memoization) against the v2 path
//! (work-stealing + cross-point memoization) plus a persistent
//! result-store cold/restart-warm arm per workload, writes the
//! `BENCH_sweep.json` trajectory report, and optionally gates against a
//! committed baseline.
//!
//! ```text
//! xlda-bench [--smoke] [--workload NAME]... [--out PATH]
//!            [--baseline PATH] [--tolerance FRACTION]
//!            [--no-obs] [--trace PATH]
//! xlda-bench --obs-overhead [--smoke] [--workload NAME] [--trace PATH]
//! xlda-bench --flight-overhead [--smoke]
//! xlda-bench --loadgen [--smoke] [--duration-secs N] [--connections N]
//!            [--serve-addr ADDR] [--access-log PATH] [--out PATH]
//! xlda-bench --store-smoke [--smoke] [--store-path PATH]
//!            [--verify COLD.json] [--out PATH]
//! ```
//!
//! - `--smoke`: shrunken grids for CI (seconds, not minutes).
//! - `--workload`: `hdc`, `mann`, `triage`, or `mc`; repeatable;
//!   default all. `mc` runs Monte-Carlo trial populations per point and
//!   adds `trials_per_sec` to the report; its v1/v2 checksum match is
//!   the chunking-determinism gate.
//! - `--out`: report path (default `BENCH_sweep.json`, or
//!   `BENCH_serve.json` under `--loadgen`).
//! - `--baseline`: gate against this committed report; exit 1 when v2
//!   throughput falls below its `points_per_sec` floors minus
//!   `--tolerance` (default 0.30), when a recorded `min_speedup` is
//!   missed, when baseline/v2 outputs are not bit-identical, or — for
//!   workloads with a cold columnar arm — when `cold_points_per_sec` /
//!   `min_cold_speedup` floors are missed or the cold scalar/columnar
//!   checksums diverge.
//! - `--no-obs`: leave span instrumentation off (no per-layer
//!   breakdown; what production embedders see by default).
//! - `--trace PATH`: capture per-span events during the run and write
//!   an NDJSON trace dump (span events + aggregates) to `PATH`.
//! - `--obs-overhead`: instead of the engine comparison, run one
//!   workload's v2 path with spans off then on; exit 1 when the
//!   checksums differ or the enabled-mode wall-time overhead exceeds
//!   5% (the CI `obs-overhead` gate).
//! - `--flight-overhead`: the flight-recorder cost gate. Drives the
//!   loadgen mix through recorder-off and recorder-on (+ access log)
//!   in-process servers in interleaved pairs; exit 1 when the sorted
//!   response checksums are not bit-identical or the median pair
//!   overhead exceeds 5% (the CI gate next to `obs-overhead`).
//! - `--loadgen`: instead of the sweep benchmark, hammer `xlda-serve`
//!   with a mixed hdc/mann/triage stream (in-process server unless
//!   `--serve-addr` names a running daemon), verify bit-exact parity,
//!   and write the serving trajectory report. `--access-log PATH`
//!   routes every benchmarked request through the wide-event NDJSON
//!   log; the post-warm `debug` probe asserts the flight recorder
//!   retained the slowest request with an exactly-telescoping stage
//!   breakdown.
//! - `--store-smoke`: the cross-process crash-recovery gate. Without
//!   `--verify`, deletes the store file at `--store-path` (default
//!   `xlda_store.bin`), resolves every workload cold, and writes a
//!   `xlda-bench-store-v1` report. With `--verify COLD.json` — run as a
//!   *separate process*, optionally after corrupting the store's tail —
//!   reopens the persisted file and exits 1 unless every point is a
//!   store hit (hit rate exactly 1.0) and every workload checksum is
//!   bit-identical to the cold report's.

use std::process::ExitCode;
use std::time::Duration;
use xlda_bench::flight_bench;
use xlda_bench::loadgen::{self, LoadgenConfig};
use xlda_bench::store_bench;
use xlda_bench::sweep_bench::{self, Workload};

struct Args {
    smoke: bool,
    workloads: Vec<Workload>,
    out: Option<String>,
    baseline: Option<String>,
    tolerance: f64,
    no_obs: bool,
    trace: Option<String>,
    obs_overhead: bool,
    flight_overhead: bool,
    loadgen: bool,
    duration_secs: Option<u64>,
    connections: Option<usize>,
    serve_addr: Option<String>,
    transport: loadgen::Transport,
    access_log: Option<String>,
    store_smoke: bool,
    store_path: String,
    verify: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: xlda-bench [--smoke] [--workload hdc|mann|triage|mc]... \
         [--out PATH] [--baseline PATH] [--tolerance FRACTION] \
         [--no-obs] [--trace PATH]\n\
         \x20      xlda-bench --obs-overhead [--smoke] [--workload NAME] [--trace PATH]\n\
         \x20      xlda-bench --flight-overhead [--smoke]\n\
         \x20      xlda-bench --loadgen [--smoke] [--duration-secs N] \
         [--connections N] [--serve-addr ADDR] [--transport event|threaded] \
         [--access-log PATH] [--baseline PATH] [--out PATH]\n\
         \x20      xlda-bench --store-smoke [--smoke] [--store-path PATH] \
         [--verify COLD.json] [--out PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        workloads: Vec::new(),
        out: None,
        baseline: None,
        tolerance: 0.30,
        no_obs: false,
        trace: None,
        obs_overhead: false,
        flight_overhead: false,
        loadgen: false,
        duration_secs: None,
        connections: None,
        serve_addr: None,
        transport: loadgen::Transport::Event,
        access_log: None,
        store_smoke: false,
        store_path: "xlda_store.bin".to_string(),
        verify: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--loadgen" => args.loadgen = true,
            "--no-obs" => args.no_obs = true,
            "--obs-overhead" => args.obs_overhead = true,
            "--flight-overhead" => args.flight_overhead = true,
            "--trace" => match it.next() {
                Some(p) => args.trace = Some(p),
                None => usage(),
            },
            "--workload" => match it.next().as_deref().and_then(Workload::parse) {
                Some(w) => args.workloads.push(w),
                None => usage(),
            },
            "--out" => match it.next() {
                Some(p) => args.out = Some(p),
                None => usage(),
            },
            "--baseline" => match it.next() {
                Some(p) => args.baseline = Some(p),
                None => usage(),
            },
            "--tolerance" => match it.next().and_then(|t| t.parse().ok()) {
                Some(t) => args.tolerance = t,
                None => usage(),
            },
            "--duration-secs" => match it.next().and_then(|t| t.parse().ok()) {
                Some(t) => args.duration_secs = Some(t),
                None => usage(),
            },
            "--connections" => match it.next().and_then(|t| t.parse().ok()) {
                Some(t) if t > 0 => args.connections = Some(t),
                _ => usage(),
            },
            "--serve-addr" => match it.next() {
                Some(a) => args.serve_addr = Some(a),
                None => usage(),
            },
            "--transport" => match it.next().as_deref().and_then(loadgen::Transport::parse) {
                Some(t) => args.transport = t,
                None => usage(),
            },
            "--access-log" => match it.next() {
                Some(p) => args.access_log = Some(p),
                None => usage(),
            },
            "--store-smoke" => args.store_smoke = true,
            "--store-path" => match it.next() {
                Some(p) => args.store_path = p,
                None => usage(),
            },
            "--verify" => match it.next() {
                Some(p) => args.verify = Some(p),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn run_loadgen(args: &Args) -> ExitCode {
    let mut config = LoadgenConfig::new(args.smoke);
    if let Some(secs) = args.duration_secs {
        config.duration = Duration::from_secs(secs.max(1));
    }
    if let Some(n) = args.connections {
        config.connections = n;
    }
    config.serve_addr = args.serve_addr.clone();
    config.transport = args.transport;
    config.access_log = args.access_log.clone();

    let report = loadgen::run(&config);
    loadgen::print(&report);

    let out = args.out.as_deref().unwrap_or("BENCH_serve.json");
    let json = loadgen::to_json(&report, args.smoke, &config);
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("xlda-bench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nreport written to {out}");

    let mut failures = loadgen::failures(&report);
    if let Some(path) = &args.baseline {
        match std::fs::read_to_string(path) {
            Ok(baseline) => {
                let gate = loadgen::check_against_baseline(&report, &baseline);
                if gate.is_empty() {
                    println!("serve baseline gate: PASS (vs {path})");
                }
                failures.extend(gate);
            }
            Err(e) => failures.push(format!("cannot read baseline {path}: {e}")),
        }
    }
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}

/// Starts event capture if `--trace` was given; returns whether it did.
fn trace_start(args: &Args) -> bool {
    if args.trace.is_some() {
        xlda_obs::trace::start();
        true
    } else {
        false
    }
}

/// Stops capture and writes the NDJSON dump. Aggregates are from the
/// final measured run (each trial resets them); events span the whole
/// capture window.
fn trace_finish(args: &Args) -> Result<(), ExitCode> {
    let Some(path) = &args.trace else {
        return Ok(());
    };
    let events = xlda_obs::trace::stop();
    let aggregates = xlda_obs::aggregate_snapshot();
    let dump = xlda_obs::export::trace_ndjson(&events, &aggregates, xlda_obs::trace::dropped());
    if let Err(e) = std::fs::write(path, dump) {
        eprintln!("xlda-bench: cannot write trace {path}: {e}");
        return Err(ExitCode::FAILURE);
    }
    println!("trace written to {path} ({} span events)", events.len());
    Ok(())
}

/// The `--store-smoke` gate: one process's cold or warm pass over the
/// persistent store, reported as `xlda-bench-store-v1`.
fn run_store_smoke(args: &Args) -> ExitCode {
    let path = std::path::Path::new(&args.store_path);
    let cold = args.verify.is_none();
    let report = store_bench::run_store_smoke(args.smoke, path, cold);
    store_bench::print_store_smoke(&report);

    let out = args.out.as_deref().unwrap_or(if cold {
        "BENCH_store_cold.json"
    } else {
        "BENCH_store_warm.json"
    });
    let json = store_bench::smoke_to_json(&report, path);
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("xlda-bench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("report written to {out}");

    let mut failures = Vec::new();
    if let Some(cold_path) = &args.verify {
        match std::fs::read_to_string(cold_path) {
            Ok(cold_json) => {
                failures = store_bench::verify_store_smoke(&report, &cold_json);
                if failures.is_empty() {
                    println!("store-smoke gate: PASS (vs {cold_path})");
                }
            }
            Err(e) => failures.push(format!("cannot read cold report {cold_path}: {e}")),
        }
    }
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}

/// Maximum tolerated wall-time cost of enabled instrumentation.
const OBS_OVERHEAD_LIMIT: f64 = 0.05;

fn run_obs_overhead(args: &Args) -> ExitCode {
    let w = args.workloads.first().copied().unwrap_or(Workload::Triage);
    trace_start(args);
    let o = sweep_bench::run_obs_overhead(w, args.smoke);
    sweep_bench::print_obs_overhead(&o);
    if let Err(code) = trace_finish(args) {
        return code;
    }
    let mut failures = Vec::new();
    if !o.checksum_match() {
        failures.push(format!(
            "{}: instrumentation changed outputs ({:016x} vs {:016x})",
            o.workload, o.off.checksum, o.on.checksum
        ));
    }
    if o.overhead_frac() > OBS_OVERHEAD_LIMIT {
        failures.push(format!(
            "{}: enabled-span overhead {:.2}% exceeds {:.0}%",
            o.workload,
            o.overhead_frac() * 100.0,
            OBS_OVERHEAD_LIMIT * 100.0
        ));
    }
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}

fn run_flight_overhead(args: &Args) -> ExitCode {
    let report = flight_bench::run(args.smoke);
    flight_bench::print(&report);
    let failures = flight_bench::failures(&report);
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.loadgen {
        return run_loadgen(&args);
    }
    if args.flight_overhead {
        return run_flight_overhead(&args);
    }
    if args.store_smoke {
        return run_store_smoke(&args);
    }
    if args.obs_overhead {
        return run_obs_overhead(&args);
    }
    let tracing = trace_start(&args);
    if tracing && args.no_obs {
        eprintln!("xlda-bench: --trace needs spans; ignoring --no-obs");
    }
    let results = sweep_bench::run(&args.workloads, args.smoke, !args.no_obs || tracing);
    sweep_bench::print(&results);
    if let Err(code) = trace_finish(&args) {
        return code;
    }

    // The persistent-store arm rides on the same report: cold
    // (evaluate + append) vs restart-warm (disk replay) per workload.
    let store_arms = store_bench::run_store_arms(&args.workloads, args.smoke);
    store_bench::print_store_arms(&store_arms);

    let out = args.out.as_deref().unwrap_or("BENCH_sweep.json");
    let json = sweep_bench::to_json_with_store(&results, &store_arms, args.smoke);
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("xlda-bench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nreport written to {out}");

    // Bit-exactness invariants hold regardless of a baseline file: the
    // warm arms must agree, and so must the cold scalar/columnar pair.
    let mut failures: Vec<String> = Vec::new();
    for r in &results {
        if !r.checksum_match() {
            failures.push(format!(
                "{} [v1 baseline vs v2 warm]: checksum mismatch ({:016x} vs {:016x})",
                r.name, r.baseline.checksum, r.v2.checksum
            ));
        }
        if let Some(cold) = &r.cold {
            if !cold.checksum_match() {
                failures.push(format!(
                    "{} [cold scalar vs cold columnar]: checksum mismatch ({:016x} vs {:016x})",
                    r.name, cold.scalar.checksum, cold.columnar.checksum
                ));
            }
        }
    }

    // The store arms' invariants (bit-exact replay, hit rate 1.0) hold
    // regardless of a baseline; speedup floors need the baseline file.
    failures.extend(store_bench::check_store_baseline(&store_arms, ""));

    if let Some(path) = &args.baseline {
        match std::fs::read_to_string(path) {
            Ok(baseline) => {
                // The gate re-checks checksums; drop the duplicates above.
                failures = sweep_bench::check_against_baseline(&results, &baseline, args.tolerance);
                failures.extend(store_bench::check_store_baseline(&store_arms, &baseline));
                if failures.is_empty() {
                    println!(
                        "baseline gate: PASS (vs {path}, tolerance {})",
                        args.tolerance
                    );
                }
            }
            Err(e) => failures.push(format!("cannot read baseline {path}: {e}")),
        }
    }

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}
