//! `xlda-bench` — sweep-engine benchmark harness and CI throughput gate.
//!
//! Runs the fixed HDC/MANN/triage sweep workloads, comparing the v1
//! engine path (static chunking, no memoization) against the v2 path
//! (work-stealing + cross-point memoization), writes the
//! `BENCH_sweep.json` trajectory report, and optionally gates against a
//! committed baseline.
//!
//! ```text
//! xlda-bench [--smoke] [--workload NAME]... [--out PATH]
//!            [--baseline PATH] [--tolerance FRACTION]
//! ```
//!
//! - `--smoke`: shrunken grids for CI (seconds, not minutes).
//! - `--workload`: `hdc`, `mann`, or `triage`; repeatable; default all.
//! - `--out`: report path (default `BENCH_sweep.json`).
//! - `--baseline`: gate against this committed report; exit 1 when v2
//!   throughput falls below its `points_per_sec` floors minus
//!   `--tolerance` (default 0.30), when a recorded `min_speedup` is
//!   missed, or when baseline/v2 outputs are not bit-identical.

use std::process::ExitCode;
use xlda_bench::sweep_bench::{self, Workload};

struct Args {
    smoke: bool,
    workloads: Vec<Workload>,
    out: String,
    baseline: Option<String>,
    tolerance: f64,
}

fn usage() -> ! {
    eprintln!(
        "usage: xlda-bench [--smoke] [--workload hdc|mann|triage]... \
         [--out PATH] [--baseline PATH] [--tolerance FRACTION]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        workloads: Vec::new(),
        out: "BENCH_sweep.json".to_string(),
        baseline: None,
        tolerance: 0.30,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--workload" => match it.next().as_deref().and_then(Workload::parse) {
                Some(w) => args.workloads.push(w),
                None => usage(),
            },
            "--out" => match it.next() {
                Some(p) => args.out = p,
                None => usage(),
            },
            "--baseline" => match it.next() {
                Some(p) => args.baseline = Some(p),
                None => usage(),
            },
            "--tolerance" => match it.next().and_then(|t| t.parse().ok()) {
                Some(t) => args.tolerance = t,
                None => usage(),
            },
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let results = sweep_bench::run(&args.workloads, args.smoke);
    sweep_bench::print(&results);

    let json = sweep_bench::to_json(&results, args.smoke);
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("xlda-bench: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("\nreport written to {}", args.out);

    let mut failures: Vec<String> = results
        .iter()
        .filter(|r| !r.checksum_match())
        .map(|r| {
            format!(
                "{}: baseline/v2 checksum mismatch ({:016x} vs {:016x})",
                r.name, r.baseline.checksum, r.v2.checksum
            )
        })
        .collect();

    if let Some(path) = &args.baseline {
        match std::fs::read_to_string(path) {
            Ok(baseline) => {
                // The gate re-checks checksums; drop the duplicates above.
                failures = sweep_bench::check_against_baseline(&results, &baseline, args.tolerance);
                if failures.is_empty() {
                    println!(
                        "baseline gate: PASS (vs {path}, tolerance {})",
                        args.tolerance
                    );
                }
            }
            Err(e) => failures.push(format!("cannot read baseline {path}: {e}")),
        }
    }

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}
