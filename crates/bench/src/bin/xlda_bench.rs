//! `xlda-bench` — sweep-engine benchmark harness and CI throughput gate.
//!
//! Runs the fixed HDC/MANN/triage sweep workloads, comparing the v1
//! engine path (static chunking, no memoization) against the v2 path
//! (work-stealing + cross-point memoization), writes the
//! `BENCH_sweep.json` trajectory report, and optionally gates against a
//! committed baseline.
//!
//! ```text
//! xlda-bench [--smoke] [--workload NAME]... [--out PATH]
//!            [--baseline PATH] [--tolerance FRACTION]
//! xlda-bench --loadgen [--smoke] [--duration-secs N] [--connections N]
//!            [--serve-addr ADDR] [--out PATH]
//! ```
//!
//! - `--smoke`: shrunken grids for CI (seconds, not minutes).
//! - `--workload`: `hdc`, `mann`, or `triage`; repeatable; default all.
//! - `--out`: report path (default `BENCH_sweep.json`, or
//!   `BENCH_serve.json` under `--loadgen`).
//! - `--baseline`: gate against this committed report; exit 1 when v2
//!   throughput falls below its `points_per_sec` floors minus
//!   `--tolerance` (default 0.30), when a recorded `min_speedup` is
//!   missed, or when baseline/v2 outputs are not bit-identical.
//! - `--loadgen`: instead of the sweep benchmark, hammer `xlda-serve`
//!   with a mixed hdc/mann/triage stream (in-process server unless
//!   `--serve-addr` names a running daemon), verify bit-exact parity,
//!   and write the serving trajectory report.

use std::process::ExitCode;
use std::time::Duration;
use xlda_bench::loadgen::{self, LoadgenConfig};
use xlda_bench::sweep_bench::{self, Workload};

struct Args {
    smoke: bool,
    workloads: Vec<Workload>,
    out: Option<String>,
    baseline: Option<String>,
    tolerance: f64,
    loadgen: bool,
    duration_secs: Option<u64>,
    connections: Option<usize>,
    serve_addr: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: xlda-bench [--smoke] [--workload hdc|mann|triage]... \
         [--out PATH] [--baseline PATH] [--tolerance FRACTION]\n\
         \x20      xlda-bench --loadgen [--smoke] [--duration-secs N] \
         [--connections N] [--serve-addr ADDR] [--out PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        workloads: Vec::new(),
        out: None,
        baseline: None,
        tolerance: 0.30,
        loadgen: false,
        duration_secs: None,
        connections: None,
        serve_addr: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--loadgen" => args.loadgen = true,
            "--workload" => match it.next().as_deref().and_then(Workload::parse) {
                Some(w) => args.workloads.push(w),
                None => usage(),
            },
            "--out" => match it.next() {
                Some(p) => args.out = Some(p),
                None => usage(),
            },
            "--baseline" => match it.next() {
                Some(p) => args.baseline = Some(p),
                None => usage(),
            },
            "--tolerance" => match it.next().and_then(|t| t.parse().ok()) {
                Some(t) => args.tolerance = t,
                None => usage(),
            },
            "--duration-secs" => match it.next().and_then(|t| t.parse().ok()) {
                Some(t) => args.duration_secs = Some(t),
                None => usage(),
            },
            "--connections" => match it.next().and_then(|t| t.parse().ok()) {
                Some(t) if t > 0 => args.connections = Some(t),
                _ => usage(),
            },
            "--serve-addr" => match it.next() {
                Some(a) => args.serve_addr = Some(a),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn run_loadgen(args: &Args) -> ExitCode {
    let mut config = LoadgenConfig::new(args.smoke);
    if let Some(secs) = args.duration_secs {
        config.duration = Duration::from_secs(secs.max(1));
    }
    if let Some(n) = args.connections {
        config.connections = n;
    }
    config.serve_addr = args.serve_addr.clone();

    let report = loadgen::run(&config);
    loadgen::print(&report);

    let out = args.out.as_deref().unwrap_or("BENCH_serve.json");
    let json = loadgen::to_json(&report, args.smoke, &config);
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("xlda-bench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nreport written to {out}");

    let failures = loadgen::failures(&report);
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.loadgen {
        return run_loadgen(&args);
    }
    let results = sweep_bench::run(&args.workloads, args.smoke);
    sweep_bench::print(&results);

    let out = args.out.as_deref().unwrap_or("BENCH_sweep.json");
    let json = sweep_bench::to_json(&results, args.smoke);
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("xlda-bench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nreport written to {out}");

    let mut failures: Vec<String> = results
        .iter()
        .filter(|r| !r.checksum_match())
        .map(|r| {
            format!(
                "{}: baseline/v2 checksum mismatch ({:016x} vs {:016x})",
                r.name, r.baseline.checksum, r.v2.checksum
            )
        })
        .collect();

    if let Some(path) = &args.baseline {
        match std::fs::read_to_string(path) {
            Ok(baseline) => {
                // The gate re-checks checksums; drop the duplicates above.
                failures = sweep_bench::check_against_baseline(&results, &baseline, args.tolerance);
                if failures.is_empty() {
                    println!(
                        "baseline gate: PASS (vs {path}, tolerance {})",
                        args.tolerance
                    );
                }
            }
            Err(e) => failures.push(format!("cannot read baseline {path}: {e}")),
        }
    }

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}
