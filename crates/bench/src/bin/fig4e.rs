//! Regenerates the paper artifact; see `xlda_bench::fig4e`.

fn main() {
    let result = xlda_bench::fig4e::run(false);
    xlda_bench::fig4e::print(&result);
}
