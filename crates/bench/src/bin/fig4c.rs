//! Regenerates the paper artifact; see `xlda_bench::fig4c`.

fn main() {
    let result = xlda_bench::fig4c::run(false);
    xlda_bench::fig4c::print(&result);
}
