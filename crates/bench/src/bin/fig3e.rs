//! Regenerates the paper artifact; see `xlda_bench::fig3e`.

fn main() {
    let result = xlda_bench::fig3e::run(false);
    xlda_bench::fig3e::print(&result);
}
