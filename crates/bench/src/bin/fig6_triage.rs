//! Regenerates the paper artifact; see `xlda_bench::fig6_triage`.

fn main() {
    let result = xlda_bench::fig6_triage::run(false);
    xlda_bench::fig6_triage::print(&result);
}
