//! Regenerates the paper artifact; see `xlda_bench::fig3h`.

fn main() {
    let result = xlda_bench::fig3h::run(false);
    xlda_bench::fig3h::print(&result);
}
