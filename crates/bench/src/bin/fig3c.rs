//! Regenerates the paper artifact; see `xlda_bench::fig3c`.

fn main() {
    let result = xlda_bench::fig3c::run(false);
    xlda_bench::fig3c::print(&result);
}
