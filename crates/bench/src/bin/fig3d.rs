//! Regenerates the paper artifact; see `xlda_bench::fig3d`.

fn main() {
    let result = xlda_bench::fig3d::run(false);
    xlda_bench::fig3d::print(&result);
}
