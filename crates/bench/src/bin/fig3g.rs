//! Regenerates the paper artifact; see `xlda_bench::fig3g`.

fn main() {
    let result = xlda_bench::fig3g::run(false);
    xlda_bench::fig3g::print(&result);
}
