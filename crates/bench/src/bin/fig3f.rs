//! Regenerates the paper artifact; see `xlda_bench::fig3f`.

fn main() {
    let result = xlda_bench::fig3f::run(false);
    xlda_bench::fig3f::print(&result);
}
