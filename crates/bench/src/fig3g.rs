//! Fig. 3G — programming-variation analysis.
//!
//! (i) V_th state distributions of a multi-level FeFET cell overlap at
//! the experimentally observed sigma (94 mV);
//! (ii) yet classification accuracy is flat in sigma until far beyond
//! that point — the HDC model tolerates the paper's measured variation.

use crate::hard_isolet_with;
use xlda_device::fefet::Fefet;
use xlda_hdc::cam::{Aggregation, CamAm, CamSearchConfig};
use xlda_hdc::encode::{Encoder, EncoderConfig};
use xlda_hdc::model::HdcModel;
use xlda_num::rng::Rng64;

/// Distribution summary for one programmed level (panel i).
#[derive(Debug, Clone, PartialEq)]
pub struct LevelDistribution {
    /// Level index.
    pub level: usize,
    /// Target V_th (V).
    pub target_v: f64,
    /// Analytical probability of reading back a different level.
    pub error_rate: f64,
}

/// One accuracy point of the sigma sweep (panel ii).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SigmaPoint {
    /// Bits per CAM cell.
    pub bits: u8,
    /// Programming sigma (V).
    pub sigma: f64,
    /// CAM classification accuracy.
    pub accuracy: f64,
}

/// Complete Fig. 3G output.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3g {
    /// Panel i: state distributions at the paper's 94 mV sigma (3-bit).
    pub distributions: Vec<LevelDistribution>,
    /// Panel i Monte-Carlo histograms: per level, bin densities over the
    /// V_th axis (for the overlap visual).
    pub histograms: Vec<Vec<f64>>,
    /// Bin centers shared by all histograms (V).
    pub bin_centers: Vec<f64>,
    /// Panel ii: accuracy vs sigma for 1/2/3-bit cells.
    pub sweep: Vec<SigmaPoint>,
}

/// Runs both panels.
pub fn run(quick: bool) -> Fig3g {
    // Panel i: 3-bit cell at the measured 94 mV.
    let dev = Fefet::silicon().with_sigma(0.094);
    let mlc = dev.mlc(3);
    let distributions = (0..mlc.level_count())
        .map(|level| LevelDistribution {
            level,
            target_v: mlc.level_target(level),
            error_rate: mlc.level_error_rate(level),
        })
        .collect();
    let bins = 48;
    let samples = if quick { 2_000 } else { 20_000 };
    let mut hist_rng = Rng64::new(0x3616);
    let mut histograms = Vec::new();
    let mut bin_centers = Vec::new();
    for level in 0..mlc.level_count() {
        let h = mlc.state_histogram(level, samples, bins, &mut hist_rng);
        if bin_centers.is_empty() {
            bin_centers = (0..bins).map(|i| h.bin_center(i)).collect();
        }
        histograms.push((0..bins).map(|i| h.density(i)).collect());
    }

    // Panel ii: sigma sweep, at an operating point matching the paper's
    // (high baseline accuracy, where 94 mV is tolerated).
    let data = hard_isolet_with(3.0, quick);
    let hv_dim = if quick { 1024 } else { 2048 };
    let sigmas: &[f64] = if quick {
        &[0.0, 0.094, 0.45]
    } else {
        &[0.0, 0.025, 0.050, 0.094, 0.150, 0.250, 0.450]
    };
    let bits_axis: &[u8] = if quick { &[1, 3] } else { &[1, 2, 3] };
    let mut sweep = Vec::new();
    for &bits in bits_axis {
        let encoder = Encoder::new(&EncoderConfig {
            dim_in: data.dim(),
            hv_dim,
            ..EncoderConfig::default()
        });
        let model = HdcModel::train(&encoder, &data, bits, 1);
        for &sigma in sigmas {
            let config = CamSearchConfig {
                bits_per_cell: bits,
                subarray_cols: 64,
                device: Fefet::silicon().with_sigma(sigma),
                aggregation: Aggregation::DistanceSum { resolution: None },
                verify_tolerance: None,
            };
            let cam = CamAm::program(&model, &config, &mut Rng64::new(0x36));
            sweep.push(SigmaPoint {
                bits,
                sigma,
                accuracy: cam.accuracy(&encoder, &data),
            });
        }
    }
    Fig3g {
        distributions,
        histograms,
        bin_centers,
        sweep,
    }
}

/// Prints both panels.
pub fn print(result: &Fig3g) {
    println!("Fig. 3G-i — 3-bit FeFET state overlap at sigma = 94 mV");
    crate::rule(52);
    println!(
        "{:>6} {:>12} {:>16}",
        "level", "target (V)", "read-error rate"
    );
    for d in &result.distributions {
        println!(
            "{:>6} {:>12.3} {:>15.1}%",
            d.level,
            d.target_v,
            d.error_rate * 100.0
        );
    }
    println!();
    println!("state-distribution histogram (each row one level, '#' ∝ density):");
    for (level, h) in result.histograms.iter().enumerate() {
        let peak = h.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
        let row: String = h
            .iter()
            .map(|&d| {
                let t = d / peak;
                if t > 0.6 {
                    '#'
                } else if t > 0.25 {
                    '+'
                } else if t > 0.05 {
                    '.'
                } else {
                    ' '
                }
            })
            .collect();
        println!("  L{level} |{row}|");
    }
    println!();
    println!("Fig. 3G-ii — accuracy vs programming sigma");
    crate::rule(52);
    println!("{:>6} {:>12} {:>10}", "bits", "sigma (mV)", "accuracy");
    for p in &result.sweep {
        println!(
            "{:>6} {:>12.0} {:>9.1}%",
            p.bits,
            p.sigma * 1e3,
            p.accuracy * 100.0
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histograms_overlap_between_adjacent_levels() {
        let r = run(true);
        assert_eq!(r.histograms.len(), 8);
        // Adjacent level histograms share mass in some bin.
        let a = &r.histograms[3];
        let b = &r.histograms[4];
        let overlap: f64 = a.iter().zip(b).map(|(x, y)| x.min(*y)).sum();
        assert!(overlap > 0.1, "overlap {overlap}");
    }

    #[test]
    fn states_overlap_but_accuracy_survives_94mv() {
        let r = run(true);
        // Panel i: interior 3-bit levels overlap visibly at 94 mV.
        let interior_err = r.distributions[3].error_rate;
        assert!(interior_err > 0.1, "interior error {interior_err}");
        // Panel ii: 3-bit accuracy at 94 mV matches the ideal case.
        let acc = |bits: u8, sigma: f64| {
            r.sweep
                .iter()
                .find(|p| p.bits == bits && (p.sigma - sigma).abs() < 1e-9)
                .expect("sweep point")
                .accuracy
        };
        assert!(
            acc(3, 0.094) >= acc(3, 0.0) - 0.03,
            "94 mV should not hurt 3-bit accuracy"
        );
        // Extreme sigma finally does damage.
        assert!(acc(3, 0.45) < acc(3, 0.0));
    }
}
