//! "Paths forward" extensions (paper Secs. VI-VII proposed enhancements).
//!
//! Four studies the paper calls for beyond its published evaluation:
//!
//! 1. **Variation-aware array sizing** — device-variation distributions
//!    integrated into the matchline model yield array-width limits per
//!    technology (the Eva-CAM enhancement of Sec. VI).
//! 2. **IMC favorability** — Eva-CiM-style verdicts for a program mix.
//! 3. **Endurance-limited lifetime** — NVMExplorer-style traffic-based
//!    lifetime ranking (the Sec. VII write-heavy triage question).
//! 4. **Accelerator-level parallelism** — multi-stream utilization of a
//!    heterogeneous system (the Hill & Reddi question of Sec. I).

use xlda_core::cim::{analyze, CimAnalysis, CimCriteria};
use xlda_evacam::variation::{max_cells_with_variation, CellVariation};
use xlda_evacam::CamCellDesign;
use xlda_nvram::lifetime::{rank_by_lifetime, LifetimeEstimate, WriteTraffic};
use xlda_nvram::RamCell;
use xlda_syssim::alp::{run_streams, AlpReport};
use xlda_syssim::system::{AccelConfig, SystemConfig};
use xlda_syssim::workload::{cnn_trace, hdc_trace, lstm_trace, transformer_trace};

/// Combined results of the four extension studies.
#[derive(Debug, Clone)]
pub struct Extensions {
    /// (design, variation-aware max matchline cells at distance 4).
    pub array_limits: Vec<(CamCellDesign, Option<usize>)>,
    /// Per-workload IMC favorability.
    pub cim: Vec<CimAnalysis>,
    /// Lifetime ranking under write-heavy edge traffic.
    pub lifetimes: Vec<(RamCell, LifetimeEstimate)>,
    /// ALP report for a mixed two-stream deployment.
    pub alp: AlpReport,
}

/// Runs all four studies.
pub fn run(quick: bool) -> Extensions {
    // 1. Variation-aware array-width limits at BE-match distance 4.
    let variation = CellVariation::default();
    let array_limits = CamCellDesign::all()
        .iter()
        .map(|&design| {
            let cfg = design.matchline_config();
            (design, max_cells_with_variation(&cfg, &variation, 4, 1e-3))
        })
        .collect();

    // 2. IMC favorability across a program mix.
    let layers = if quick { 4 } else { 10 };
    let cim = [
        cnn_trace(layers),
        transformer_trace(2, 512, 256),
        lstm_trace(8, 512),
        hdc_trace(617, 4096, 26),
    ]
    .iter()
    .map(|w| analyze(w, &AccelConfig::default(), &CimCriteria::default()))
    .collect();

    // 3. Lifetime ranking: 50 MB/s of writes, realistic wear leveling.
    let lifetimes = rank_by_lifetime(
        &[
            RamCell::Rram1T1R,
            RamCell::Pcm1T1R,
            RamCell::Mram1T1R,
            RamCell::Fefet1T,
            RamCell::Nand3D { layers: 64 },
        ],
        (64 * 8) << 20, // 64 MiB
        &WriteTraffic {
            bytes_per_second: 50e6,
            leveling: 0.8,
        },
    );

    // 4. ALP: a CNN inference stream next to an LSTM serving stream.
    let alp = run_streams(
        &SystemConfig::with_crossbar(),
        &[
            cnn_trace(layers),
            lstm_trace(if quick { 16 } else { 64 }, 1024),
        ],
    );

    Extensions {
        array_limits,
        cim,
        lifetimes,
        alp,
    }
}

/// Prints all four study tables.
pub fn print(r: &Extensions) {
    println!("Extensions — the paper's proposed enhancements, implemented");
    crate::rule(76);

    println!("\n[1] variation-aware matchline limits (BE-match distance 4, err <= 1e-3)");
    for (design, limit) in &r.array_limits {
        match limit {
            Some(n) => println!("  {:<16} up to {n} cells per matchline", design.label()),
            None => println!("  {:<16} cannot resolve distance 4 at all", design.label()),
        }
    }

    println!("\n[2] IMC favorability (Eva-CiM lane)");
    for a in &r.cim {
        println!(
            "  {:<18} speedup {:>5.1}x  energy {:>6.1}x  offload {:>5.1}%  -> {:?}",
            a.workload,
            a.speedup,
            a.energy_gain,
            a.offload_fraction * 100.0,
            a.verdict
        );
    }

    println!("\n[3] endurance-limited lifetime (64 MiB, 50 MB/s writes, 0.8 leveling)");
    for (cell, est) in &r.lifetimes {
        let yrs = if est.years.is_infinite() {
            "inf".to_string()
        } else if est.years > 1000.0 {
            format!("{:.0}k", est.years / 1000.0)
        } else {
            format!("{:.2}", est.years)
        };
        println!("  {:<14} {yrs:>10} years", cell.label());
    }

    println!("\n[4] accelerator-level parallelism (CNN + LSTM streams)");
    println!(
        "  serial {:.3} ms, concurrent {:.3} ms -> ALP speedup {:.2}x",
        r.alp.serial_time_s * 1e3,
        r.alp.concurrent_time_s * 1e3,
        r.alp.alp_speedup
    );
    println!(
        "  utilization: CPU {:.0}%, accelerator {:.0}%",
        r.alp.cpu_utilization * 100.0,
        r.alp.accel_utilization * 100.0
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlda_core::cim::Favorability;

    #[test]
    fn extension_studies_reproduce_expected_structure() {
        let r = run(true);
        // FeFET's transistor-gated path supports far wider matchlines
        // than the resistor-divider 2T2R cells.
        let limit = |d: CamCellDesign| {
            r.array_limits
                .iter()
                .find(|(x, _)| *x == d)
                .expect("design present")
                .1
        };
        let fefet = limit(CamCellDesign::Fefet2T).expect("fefet resolves");
        let rram = limit(CamCellDesign::Rram2T2R).unwrap_or(5);
        assert!(fefet > rram, "fefet {fefet} rram {rram}");
        // CNN strongly favorable; at least one workload is not.
        assert_eq!(r.cim[0].verdict, Favorability::StronglyFavorable);
        // MRAM outlives flash.
        assert_eq!(r.lifetimes[0].0, xlda_nvram::RamCell::Mram1T1R);
        assert_eq!(
            r.lifetimes.last().expect("rows").0,
            xlda_nvram::RamCell::Nand3D { layers: 64 }
        );
        // ALP achieves some overlap.
        assert!(r.alp.alp_speedup >= 1.0);
    }
}
