//! Fig. 3E — share of end-to-end HDC runtime spent in associative search.
//!
//! Paper shape: across datasets, search is a substantial fraction of
//! end-to-end compute time on software platforms (the Amdahl argument
//! for accelerating search with CAMs).

use xlda_baseline::{Kernel, Platform};
use xlda_datagen::ClassificationSpec;
use xlda_hdc::profile::HdcProfile;

/// One dataset row.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeShare {
    /// Dataset name.
    pub dataset: &'static str,
    /// Encoding time per query (s).
    pub encode_s: f64,
    /// Search time per query (s).
    pub search_s: f64,
    /// Search share of end-to-end runtime.
    pub search_fraction: f64,
}

/// Computes runtime shares on a batch-1 GPU for the HDC benchmark suite.
pub fn run(_quick: bool) -> Vec<RuntimeShare> {
    let gpu = Platform::gpu();
    ClassificationSpec::hdc_suite()
        .iter()
        .map(|spec| {
            let profile = HdcProfile {
                dim_in: spec.dim,
                hv_dim: 4096,
                classes: spec.classes,
                bits: 4,
            };
            let encode = Kernel::mvm(profile.hv_dim, profile.dim_in);
            // Stored class HVs stream from memory for every query batch.
            let search = Kernel::search(profile.classes * 40, profile.hv_dim, 4);
            let t_enc = gpu.time(&encode, 1);
            let t_sea = gpu.time(&search, 1);
            RuntimeShare {
                dataset: spec.name,
                encode_s: t_enc,
                search_s: t_sea,
                search_fraction: t_sea / (t_enc + t_sea),
            }
        })
        .collect()
}

/// Prints the figure series.
pub fn print(rows: &[RuntimeShare]) {
    println!("Fig. 3E — search share of end-to-end HDC runtime (GPU, batch 1)");
    crate::rule(70);
    println!(
        "{:>14} {:>12} {:>12} {:>14}",
        "dataset", "encode", "search", "search share"
    );
    for r in rows {
        println!(
            "{:>14} {:>12} {:>12} {:>13.1}%",
            r.dataset,
            crate::fmt_time(r.encode_s),
            crate::fmt_time(r.search_s),
            r.search_fraction * 100.0
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_is_substantial_across_datasets() {
        let rows = run(true);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(
                r.search_fraction > 0.2,
                "{}: search share {:.2}",
                r.dataset,
                r.search_fraction
            );
            assert!(r.search_fraction < 1.0);
        }
    }
}
