//! `--loadgen`: the serving benchmark behind `BENCH_serve.json`.
//!
//! Hammers an `xlda-serve` instance with a fixed mixed
//! hdc/mann/triage/edge request stream over several concurrent TCP
//! connections, verifying **bit-exact parity** of every response
//! against direct `Scenario::candidates` library calls while
//! measuring client-observed throughput and latency.
//!
//! Two phases run back to back on the same server process:
//!
//! - **cold** — memo caches cleared immediately before the phase, so
//!   first touches of each sub-problem pay full evaluation cost;
//! - **warm** — the same request mix again, now served out of the
//!   process-wide caches the cold phase populated.
//!
//! By default the server runs *in process* on an ephemeral port (which
//! is what lets the harness clear the process-global caches for the
//! cold phase); `--serve-addr` points the stream at an external daemon
//! instead (phases then differ only by history). Backpressure
//! rejections are retried after the server's `retry_after_ms` and
//! reported separately; a parity mismatch fails the run.

use std::fmt::Write as FmtWrite;
use std::io::{BufRead, BufReader, Write as IoWrite};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use xlda_core::evaluate::{EdgeScenario, HdcScenario, MannScenario, Scenario};
use xlda_core::fom::Candidate;
use xlda_core::mc::{MannAccuracyMcScenario, McParams};
use xlda_core::sweep::memo;
use xlda_serve::json::{obj, Json};
use xlda_serve::{AccessLog, Server, ServerConfig};

/// Which TCP transport the in-process server runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// The readiness-driven event loop (the default transport).
    Event,
    /// The legacy thread-per-connection loop, kept as an A/B baseline.
    Threaded,
}

impl Transport {
    /// Parses `event` / `threaded`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "event" => Some(Self::Event),
            "threaded" => Some(Self::Threaded),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Self::Event => "event",
            Self::Threaded => "threaded",
        }
    }
}

/// Loadgen knobs (see `xlda-bench --help`).
pub struct LoadgenConfig {
    /// Total wall-clock budget across both phases.
    pub duration: Duration,
    /// Concurrent client connections.
    pub connections: usize,
    /// External server address; `None` starts one in process.
    pub serve_addr: Option<String>,
    /// Transport for the in-process server (ignored with
    /// `serve_addr`: an external daemon picked its own).
    pub transport: Transport,
    /// Wide-event access-log path for the in-process server (ignored
    /// with `serve_addr`): every benchmarked request is logged through
    /// the bounded non-blocking writer, so the run also measures the
    /// recorder + log at full load.
    pub access_log: Option<String>,
}

impl LoadgenConfig {
    /// Defaults: 10 s total (5 s under `--smoke`), 2 connections,
    /// in-process server on the event-loop transport. Two connections,
    /// not more: client threads share the machine with the server, and
    /// on the small CI box a larger fleet oversubscribes the cores and
    /// measures scheduler queueing instead of serving latency — Little's
    /// law pins client p50 near `connections / throughput` regardless of
    /// how fast the server is.
    pub fn new(smoke: bool) -> Self {
        Self {
            duration: Duration::from_secs(if smoke { 5 } else { 10 }),
            connections: 2,
            serve_addr: None,
            transport: Transport::Event,
            access_log: None,
        }
    }
}

/// One entry of the fixed request mix.
struct MixEntry {
    name: &'static str,
    /// Request body without the `"id"` field (injected per call).
    request: String,
    /// Library ground truth for parity checking.
    expected: Vec<Candidate>,
}

/// The fixed mixed stream: two HDC points, two MANN points, a triage
/// request, an edge study, and a small Monte-Carlo population — enough
/// kind diversity to interleave in shared batches, small enough that
/// the warm phase re-hits every cached sub-problem. The MC entry's
/// candidate parity doubles as a served-determinism check: the same
/// `(seed, trials)` must reproduce the library's quantiles bit-for-bit
/// on every repetition.
fn request_mix() -> Vec<MixEntry> {
    let hdc_alt = HdcScenario {
        classes: 12,
        acc_sw: 0.93,
        ..HdcScenario::default()
    };
    let mann_alt = MannScenario {
        hash_bits: 96,
        entries: 500,
        ..MannScenario::default()
    };
    let mann_mc = MannAccuracyMcScenario {
        mc: McParams {
            trials: 128,
            seed: 11,
            ..McParams::default()
        },
        hash_bits: 32,
        ..MannAccuracyMcScenario::default()
    };
    vec![
        MixEntry {
            name: "hdc-default",
            request: r#""kind":"hdc""#.into(),
            expected: HdcScenario::default().candidates().expect("models"),
        },
        MixEntry {
            name: "hdc-alt",
            request: r#""kind":"hdc","scenario":{"classes":12,"acc_sw":0.93}"#.into(),
            expected: hdc_alt.candidates().expect("models"),
        },
        MixEntry {
            name: "mann-default",
            request: r#""kind":"mann""#.into(),
            expected: MannScenario::default().candidates().expect("models"),
        },
        MixEntry {
            name: "mann-alt",
            request: r#""kind":"mann","scenario":{"hash_bits":96,"entries":500}"#.into(),
            expected: mann_alt.candidates().expect("models"),
        },
        MixEntry {
            name: "triage",
            request: r#""kind":"triage","objective":"latency_first","floor":0.9"#.into(),
            expected: HdcScenario::default().candidates().expect("models"),
        },
        MixEntry {
            name: "edge",
            request: r#""kind":"edge""#.into(),
            expected: EdgeScenario::default().candidates().expect("models"),
        },
        MixEntry {
            name: "mann-mc",
            request: r#""kind":"mann_mc","scenario":{"trials":128,"seed":11,"hash_bits":32}"#
                .into(),
            expected: mann_mc.candidates().expect("models"),
        },
    ]
}

/// The raw request bodies of the loadgen mix (everything after the
/// `"id"` field), shared with the flight-overhead harness so both
/// measure the same traffic shape.
pub(crate) fn mix_bodies() -> Vec<String> {
    request_mix().into_iter().map(|m| m.request).collect()
}

/// Client-side results of one phase.
pub struct PhaseStats {
    /// `"cold"` or `"warm"`.
    pub name: &'static str,
    /// Successful responses.
    pub completed: u64,
    /// Backpressure rejections observed (each retried).
    pub rejected: u64,
    /// Responses whose FOMs were not bit-identical to the library.
    pub parity_failures: u64,
    /// Requests per second over the phase window.
    pub throughput_rps: f64,
    /// Client-observed latency percentiles, milliseconds.
    pub p50_ms: f64,
    /// 95th percentile, milliseconds.
    pub p95_ms: f64,
    /// Aggregate memo hit rate *within* this phase (stats delta).
    pub cache_hit_rate: f64,
}

/// Result of the post-warm `debug` probe against the flight recorder.
pub struct DebugProbe {
    /// Retained traces the `debug` response carried.
    pub traces: u64,
    /// Total latency of the slowest retained trace, milliseconds.
    pub slowest_ms: f64,
    /// Whether every trace's stage nanoseconds summed *exactly* to its
    /// recorded total (the recorder's telescoping invariant).
    pub telescoped: bool,
}

/// Whole-run results.
pub struct LoadgenReport {
    /// Phase breakdown: cold then warm.
    pub phases: Vec<PhaseStats>,
    /// Server-reported points/sec at the end of the run.
    pub server_points_per_sec: f64,
    /// Server-side enqueue-to-evaluation wait, (p50, p95) ms — from the
    /// obs histograms behind the `stats` endpoint.
    pub server_queue_wait_ms: (f64, f64),
    /// Server-side pure evaluation time, (p50, p95) ms.
    pub server_compute_ms: (f64, f64),
    /// Server-side queue cap and the depth observed at the end.
    pub queue_depth_ok: bool,
    /// Flight-recorder counters from the final stats response:
    /// `(completed, retained, sampled_out)`; `None` when disabled.
    pub flight: Option<(u64, u64, u64)>,
    /// Access-log counters from the final stats response:
    /// `(written, dropped)`; `None` when no log was configured.
    pub access_log: Option<(u64, u64)>,
    /// Post-warm `debug` probe; `None` against an external server
    /// (its recorder may be disabled, so nothing is asserted).
    pub debug: Option<DebugProbe>,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Bit-exact comparison of a served candidate array with the library's.
fn check_parity(resp: &Json, expected: &[Candidate]) -> bool {
    let Some(got) = resp.get("candidates").and_then(Json::as_arr) else {
        return false;
    };
    if got.len() != expected.len() {
        return false;
    }
    got.iter().zip(expected).all(|(g, c)| {
        g.get("name").and_then(Json::as_str) == Some(c.name.as_str())
            && [
                ("latency_s", c.fom.latency_s),
                ("energy_j", c.fom.energy_j),
                ("area_mm2", c.fom.area_mm2),
                ("accuracy", c.fom.accuracy),
            ]
            .iter()
            .all(|(field, want)| {
                g.get(field).and_then(Json::as_f64).map(f64::to_bits) == Some(want.to_bits())
            })
    })
}

/// One blocking request/response exchange with retry-on-backpressure.
/// Returns `(raw response line, rejections_seen)`; `None` on transport
/// failure. The response is returned unparsed so the caller can take
/// the byte-compare parity fast path.
fn exchange(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    id: &str,
    body: &str,
) -> Option<(String, u64)> {
    let mut rejections = 0;
    // One buffer, one write syscall, one TCP segment per request —
    // formatting straight into the unbuffered stream would issue a
    // write per format fragment and shatter the frame across segments.
    let mut frame = String::with_capacity(body.len() + id.len() + 16);
    let _ = writeln!(frame, "{{\"id\":\"{id}\",{body}}}");
    loop {
        stream.write_all(frame.as_bytes()).ok()?;
        let mut line = String::new();
        if reader.read_line(&mut line).ok()? == 0 {
            return None;
        }
        let line = line.trim().to_string();
        // Responses put `ok` right after `id`; only failures need a
        // full parse (for the backpressure hint).
        if !line.contains("\"ok\":false") {
            return Some((line, rejections));
        }
        let v = Json::parse(&line).ok()?;
        match v.get("retry_after_ms").and_then(Json::as_f64) {
            Some(ms) => {
                rejections += 1;
                std::thread::sleep(Duration::from_millis(ms as u64));
            }
            // A non-backpressure failure is a parity failure: the mix
            // contains only valid requests.
            None => return Some((line, rejections)),
        }
    }
}

/// Fetches and parses the server's `stats` response.
fn fetch_stats(addr: &str) -> Option<Json> {
    let mut stream = TcpStream::connect(addr).ok()?;
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream.try_clone().ok()?);
    let (line, _) = exchange(
        &mut stream,
        &mut reader,
        "loadgen-stats",
        r#""kind":"stats""#,
    )?;
    Json::parse(&line).ok()
}

/// Sends one `debug` request and validates the retained traces: at
/// least one must exist after a loadgen run, every trace must carry
/// the full stage tree, and the stage nanoseconds must telescope to
/// the recorded total *exactly* (the marks share one clock, so any
/// slop would be a recorder bug, not rounding).
fn debug_probe(addr: &str) -> Option<DebugProbe> {
    let mut stream = TcpStream::connect(addr).ok()?;
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream.try_clone().ok()?);
    let (line, _) = exchange(
        &mut stream,
        &mut reader,
        "loadgen-debug",
        r#""kind":"debug""#,
    )?;
    let v = Json::parse(&line).ok()?;
    let traces = v.get("traces").and_then(Json::as_arr)?;
    let mut slowest_ms: f64 = 0.0;
    let mut telescoped = true;
    for t in traces {
        let total = t.get("total_ns").and_then(Json::as_f64).unwrap_or(-1.0);
        slowest_ms = slowest_ms.max(total / 1e6);
        let sum: f64 = t
            .get("stages")
            .and_then(Json::as_arr)
            .map(|stages| {
                stages
                    .iter()
                    .filter_map(|s| s.get("ns").and_then(Json::as_f64))
                    .sum()
            })
            .unwrap_or(-2.0);
        if sum != total {
            eprintln!(
                "loadgen: trace {:?} stage sum {sum} ns != total {total} ns",
                t.get("id").and_then(Json::as_str).unwrap_or("?")
            );
            telescoped = false;
        }
    }
    Some(DebugProbe {
        traces: traces.len() as u64,
        slowest_ms,
        telescoped,
    })
}

/// Sums hits/misses across all memo caches in a stats response.
fn cache_totals(stats: &Json) -> (f64, f64) {
    let mut hits = 0.0;
    let mut misses = 0.0;
    if let Some(caches) = stats.get("caches").and_then(Json::as_arr) {
        for c in caches {
            hits += c.get("hits").and_then(Json::as_f64).unwrap_or(0.0);
            misses += c.get("misses").and_then(Json::as_f64).unwrap_or(0.0);
        }
    }
    (hits, misses)
}

/// Drives `connections` workers over the mix until the deadline.
fn run_phase(
    addr: &str,
    name: &'static str,
    duration: Duration,
    connections: usize,
    mix: &[MixEntry],
) -> PhaseStats {
    let before = fetch_stats(addr);
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();
    let workers: Vec<_> = (0..connections)
        .map(|w| {
            let stop = Arc::clone(&stop);
            let addr = addr.to_string();
            let mix: Vec<(&'static str, String, Vec<Candidate>)> = mix
                .iter()
                .map(|m| (m.name, m.request.clone(), m.expected.clone()))
                .collect();
            std::thread::spawn(move || {
                let mut latencies: Vec<f64> = Vec::new();
                let mut rejected = 0u64;
                let mut parity_failures = 0u64;
                let Ok(mut stream) = TcpStream::connect(&addr) else {
                    return (latencies, rejected, 1);
                };
                let _ = stream.set_nodelay(true);
                let Ok(read_half) = stream.try_clone() else {
                    return (latencies, rejected, 1);
                };
                let mut reader = BufReader::new(read_half);
                // Per-entry response body after the `{"id":"..."` prefix,
                // captured from the first fully-verified response. The
                // server's JSON emission is deterministic, so later
                // responses must match byte-for-byte — parity becomes a
                // memcmp instead of a parse, keeping harness overhead out
                // of the measured latency.
                let mut verified_suffix: Vec<Option<String>> = mix.iter().map(|_| None).collect();
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let entry_idx = i % mix.len();
                    let (entry, body, expected) = &mix[entry_idx];
                    let id = format!("w{w}-{i}");
                    let sent = Instant::now();
                    match exchange(&mut stream, &mut reader, &id, body) {
                        Some((line, rejections)) => {
                            // Stamp before the parity check: verification
                            // is harness work, not request latency.
                            let elapsed = sent.elapsed().as_secs_f64();
                            rejected += rejections;
                            let suffix = line.get(8 + id.len()..);
                            let parity_ok = match (&verified_suffix[entry_idx], suffix) {
                                (Some(seen), Some(sfx)) if seen == sfx => true,
                                _ => match Json::parse(&line) {
                                    Ok(v) if check_parity(&v, expected) => {
                                        if line.starts_with(&format!("{{\"id\":\"{id}\"")) {
                                            verified_suffix[entry_idx] = suffix.map(str::to_string);
                                        }
                                        true
                                    }
                                    _ => false,
                                },
                            };
                            if parity_ok {
                                latencies.push(elapsed);
                            } else {
                                eprintln!("loadgen: parity mismatch on {entry} ({id}): {line}");
                                parity_failures += 1;
                            }
                        }
                        None => break,
                    }
                    i += 1;
                }
                (latencies, rejected, parity_failures)
            })
        })
        .collect();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let mut latencies = Vec::new();
    let mut rejected = 0;
    let mut parity_failures = 0;
    for h in workers {
        let (l, r, p) = h.join().expect("worker thread");
        latencies.extend(l);
        rejected += r;
        parity_failures += p;
    }
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    latencies.sort_by(f64::total_cmp);
    let after = fetch_stats(addr);
    let cache_hit_rate = match (&before, &after) {
        (Some(b), Some(a)) => {
            let (hb, mb) = cache_totals(b);
            let (ha, ma) = cache_totals(a);
            let total = (ha - hb) + (ma - mb);
            if total > 0.0 {
                (ha - hb) / total
            } else {
                0.0
            }
        }
        _ => 0.0,
    };
    PhaseStats {
        name,
        completed: latencies.len() as u64,
        rejected,
        parity_failures,
        throughput_rps: latencies.len() as f64 / elapsed,
        p50_ms: percentile(&latencies, 50.0) * 1e3,
        p95_ms: percentile(&latencies, 95.0) * 1e3,
        cache_hit_rate,
    }
}

/// Runs the full loadgen: cold phase, warm phase, final server stats.
pub fn run(config: &LoadgenConfig) -> LoadgenReport {
    let (addr, server_thread) = match &config.serve_addr {
        Some(addr) => (addr.clone(), None),
        None => {
            // In-process server on an ephemeral port, so this process
            // owns the memo caches the cold phase needs to clear.
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
            let addr = listener.local_addr().expect("local addr").to_string();
            let log = config
                .access_log
                .as_ref()
                .map(|p| AccessLog::to_path(p).expect("open access log"));
            let server = Server::with_parts(ServerConfig::default(), None, log);
            let transport = config.transport;
            let handle = std::thread::spawn(move || {
                match transport {
                    Transport::Event => server.run_tcp(listener),
                    Transport::Threaded => server.run_tcp_threaded(listener),
                }
                .expect("server transport");
            });
            (addr, Some(handle))
        }
    };
    let mix = request_mix();
    let phase_dur = config.duration / 2;

    if config.serve_addr.is_none() {
        memo::clear_all();
    }
    let cold = run_phase(&addr, "cold", phase_dur, config.connections, &mix);
    let warm = run_phase(&addr, "warm", phase_dur, config.connections, &mix);

    let final_stats = fetch_stats(&addr);
    let server_points_per_sec = final_stats
        .as_ref()
        .and_then(|s| s.get("points_per_sec").and_then(Json::as_f64))
        .unwrap_or(0.0);
    let stat_ms = |field: &str| {
        final_stats
            .as_ref()
            .and_then(|s| s.get(field).and_then(Json::as_f64))
            .unwrap_or(0.0)
    };
    let server_queue_wait_ms = (stat_ms("queue_wait_p50_ms"), stat_ms("queue_wait_p95_ms"));
    let server_compute_ms = (stat_ms("compute_p50_ms"), stat_ms("compute_p95_ms"));
    let queue_depth_ok = final_stats
        .as_ref()
        .map(|s| {
            let depth = s.get("queue_depth").and_then(Json::as_f64).unwrap_or(0.0);
            let cap = s
                .get("queue_cap")
                .and_then(Json::as_f64)
                .unwrap_or(f64::INFINITY);
            depth <= cap
        })
        .unwrap_or(false);
    let enabled_block = |field: &str| {
        final_stats
            .as_ref()
            .and_then(|s| s.get(field))
            .filter(|b| b.get("enabled").and_then(Json::as_bool) == Some(true))
            .cloned()
    };
    let flight = enabled_block("flight").map(|b| {
        let n = |f: &str| b.get(f).and_then(Json::as_f64).unwrap_or(0.0) as u64;
        (n("completed"), n("retained"), n("sampled_out"))
    });
    let access_log = enabled_block("access_log").map(|b| {
        let n = |f: &str| b.get(f).and_then(Json::as_f64).unwrap_or(0.0) as u64;
        (n("written"), n("dropped"))
    });
    // Against the in-process server the recorder is known-enabled, so
    // the flight recorder itself is under test: a loadgen run must
    // leave at least the slowest request fully traced.
    let debug = if config.serve_addr.is_none() {
        Some(debug_probe(&addr).unwrap_or(DebugProbe {
            traces: 0,
            slowest_ms: 0.0,
            telescoped: false,
        }))
    } else {
        None
    };

    // Drain the in-process server so the report reflects a clean stop.
    if server_thread.is_some() {
        if let Ok(mut stream) = TcpStream::connect(&addr) {
            if let Ok(read_half) = stream.try_clone() {
                let mut reader = BufReader::new(read_half);
                let _ = exchange(
                    &mut stream,
                    &mut reader,
                    "loadgen-bye",
                    r#""kind":"shutdown""#,
                );
            }
        }
    }
    if let Some(h) = server_thread {
        let _ = h.join();
    }

    LoadgenReport {
        phases: vec![cold, warm],
        server_points_per_sec,
        server_queue_wait_ms,
        server_compute_ms,
        queue_depth_ok,
        flight,
        access_log,
        debug,
    }
}

/// Human-readable summary.
pub fn print(report: &LoadgenReport) {
    println!("serve loadgen — mixed hdc/mann/triage/edge stream");
    crate::rule(72);
    println!(
        "{:>6} {:>10} {:>9} {:>8} {:>9} {:>9} {:>10}",
        "phase", "req/s", "p50 ms", "p95 ms", "rejected", "parity", "cache hit"
    );
    for p in &report.phases {
        println!(
            "{:>6} {:>10.1} {:>9.3} {:>8.3} {:>9} {:>9} {:>9.1}%",
            p.name,
            p.throughput_rps,
            p.p50_ms,
            p.p95_ms,
            p.rejected,
            if p.parity_failures == 0 { "OK" } else { "FAIL" },
            p.cache_hit_rate * 100.0,
        );
    }
    println!(
        "server: {:.0} points/sec; queue bound {}",
        report.server_points_per_sec,
        if report.queue_depth_ok {
            "respected"
        } else {
            "VIOLATED"
        }
    );
    // Where a request's life goes server-side: waiting for a batch slot
    // vs actually evaluating.
    println!(
        "server time split (ms): queue-wait p50 {:.3} / p95 {:.3}, compute p50 {:.3} / p95 {:.3}",
        report.server_queue_wait_ms.0,
        report.server_queue_wait_ms.1,
        report.server_compute_ms.0,
        report.server_compute_ms.1,
    );
    if let Some((completed, retained, sampled_out)) = report.flight {
        println!(
            "flight recorder: {completed} traced, {retained} retained, {sampled_out} sampled out"
        );
    }
    if let Some((written, dropped)) = report.access_log {
        println!("access log: {written} lines written, {dropped} dropped");
    }
    if let Some(d) = &report.debug {
        println!(
            "debug probe: {} traces, slowest {:.3} ms, stage telescoping {}",
            d.traces,
            d.slowest_ms,
            if d.telescoped { "exact" } else { "BROKEN" }
        );
    }
}

/// `BENCH_serve.json` — the committed serving trajectory point.
pub fn to_json(report: &LoadgenReport, smoke: bool, config: &LoadgenConfig) -> String {
    let phases: Vec<Json> = report
        .phases
        .iter()
        .map(|p| {
            obj(vec![
                ("name", Json::Str(p.name.to_string())),
                ("completed", Json::Num(p.completed as f64)),
                ("rejected", Json::Num(p.rejected as f64)),
                ("parity_failures", Json::Num(p.parity_failures as f64)),
                ("throughput_rps", Json::Num(p.throughput_rps)),
                ("p50_ms", Json::Num(p.p50_ms)),
                ("p95_ms", Json::Num(p.p95_ms)),
                ("cache_hit_rate", Json::Num(p.cache_hit_rate)),
            ])
        })
        .collect();
    let doc = obj(vec![
        ("schema", Json::Str("xlda-bench-serve/v1".to_string())),
        ("smoke", Json::Bool(smoke)),
        ("transport", Json::Str(config.transport.name().to_string())),
        ("duration_s", Json::Num(config.duration.as_secs_f64())),
        ("connections", Json::Num(config.connections as f64)),
        ("phases", Json::Arr(phases)),
        (
            "server_points_per_sec",
            Json::Num(report.server_points_per_sec),
        ),
        (
            "server_queue_wait_p50_ms",
            Json::Num(report.server_queue_wait_ms.0),
        ),
        (
            "server_queue_wait_p95_ms",
            Json::Num(report.server_queue_wait_ms.1),
        ),
        (
            "server_compute_p50_ms",
            Json::Num(report.server_compute_ms.0),
        ),
        (
            "server_compute_p95_ms",
            Json::Num(report.server_compute_ms.1),
        ),
        ("queue_depth_ok", Json::Bool(report.queue_depth_ok)),
        (
            "flight",
            match report.flight {
                Some((completed, retained, sampled_out)) => obj(vec![
                    ("enabled", Json::Bool(true)),
                    ("completed", Json::Num(completed as f64)),
                    ("retained", Json::Num(retained as f64)),
                    ("sampled_out", Json::Num(sampled_out as f64)),
                ]),
                None => obj(vec![("enabled", Json::Bool(false))]),
            },
        ),
        (
            "access_log",
            match report.access_log {
                Some((written, dropped)) => obj(vec![
                    ("enabled", Json::Bool(true)),
                    ("written", Json::Num(written as f64)),
                    ("dropped", Json::Num(dropped as f64)),
                ]),
                None => obj(vec![("enabled", Json::Bool(false))]),
            },
        ),
        (
            "debug_probe",
            match &report.debug {
                Some(d) => obj(vec![
                    ("traces", Json::Num(d.traces as f64)),
                    ("slowest_ms", Json::Num(d.slowest_ms)),
                    ("telescoped", Json::Bool(d.telescoped)),
                ]),
                None => Json::Null,
            },
        ),
    ]);
    let mut s = doc.to_string();
    s.push('\n');
    s
}

/// Gate against the committed baseline's `serve` section
/// (`ci/bench_baseline.json`): warm-phase throughput floor, warm-phase
/// client p50 ceiling, and distinct queue-wait quantiles (the ISSUE 6
/// regression: a fixed batch window collapses every request onto the
/// same wait, and the old histogram quantiles hid it by reporting
/// p50 == p95).
pub fn check_against_baseline(report: &LoadgenReport, baseline_text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let Ok(baseline) = Json::parse(baseline_text.trim()) else {
        return vec!["baseline file is not valid JSON".to_string()];
    };
    let Some(serve) = baseline.get("serve") else {
        return vec!["baseline has no `serve` section".to_string()];
    };
    let Some(warm) = report.phases.iter().find(|p| p.name == "warm") else {
        return vec!["report has no warm phase".to_string()];
    };
    if let Some(floor) = serve.get("warm_throughput_rps_min").and_then(Json::as_f64) {
        if warm.throughput_rps < floor {
            out.push(format!(
                "serve [warm phase]: throughput {:.0} req/s below baseline floor {floor:.0}",
                warm.throughput_rps
            ));
        }
    }
    if let Some(ceiling) = serve.get("warm_p50_ms_max").and_then(Json::as_f64) {
        if warm.p50_ms > ceiling {
            out.push(format!(
                "serve [warm phase]: client p50 {:.3} ms above baseline ceiling {ceiling:.3} ms",
                warm.p50_ms
            ));
        }
    }
    if serve
        .get("queue_wait_quantiles_distinct")
        .and_then(Json::as_bool)
        == Some(true)
        && report.server_queue_wait_ms.0 == report.server_queue_wait_ms.1
    {
        out.push(format!(
            "serve [server queue]: queue-wait p50 == p95 == {} ms: quantile collapse regressed",
            report.server_queue_wait_ms.0
        ));
    }
    out
}

/// Gate used by the binary: parity and backpressure must hold.
pub fn failures(report: &LoadgenReport) -> Vec<String> {
    let mut out = Vec::new();
    for p in &report.phases {
        if p.parity_failures > 0 {
            out.push(format!(
                "{} phase: {} responses diverged from direct library evaluation",
                p.name, p.parity_failures
            ));
        }
        if p.completed == 0 {
            out.push(format!("{} phase: no requests completed", p.name));
        }
    }
    if !report.queue_depth_ok {
        out.push("server queue depth exceeded its cap".to_string());
    }
    if let Some(d) = &report.debug {
        if d.traces == 0 {
            out.push(
                "debug probe: no traces retained after a loadgen run (the slowest \
                 request must always be pinned)"
                    .to_string(),
            );
        }
        if !d.telescoped {
            out.push("debug probe: stage nanoseconds do not telescope to total_ns".to_string());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_parity_holds_against_itself() {
        for entry in request_mix() {
            assert!(
                !entry.expected.is_empty(),
                "{} has ground truth",
                entry.name
            );
        }
    }

    #[test]
    fn quick_loadgen_round_trip() {
        // A very short in-process run: parity must hold and the warm
        // phase must see cache hits.
        let config = LoadgenConfig {
            duration: Duration::from_millis(600),
            connections: 2,
            serve_addr: None,
            transport: Transport::Event,
            access_log: None,
        };
        let report = run(&config);
        assert!(failures(&report).is_empty(), "{:?}", failures(&report));
        let probe = report.debug.as_ref().expect("in-process debug probe runs");
        assert!(probe.traces >= 1 && probe.telescoped);
        assert!(
            report.server_compute_ms.1 > 0.0,
            "server must report a compute-time split"
        );
        let warm = &report.phases[1];
        assert!(
            warm.cache_hit_rate > 0.0,
            "warm phase hit rate {}",
            warm.cache_hit_rate
        );
        let json = to_json(&report, true, &config);
        let v = Json::parse(json.trim()).expect("report is valid JSON");
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("xlda-bench-serve/v1")
        );
    }
}
