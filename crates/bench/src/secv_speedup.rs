//! Sec. V — system-level crossbar offload speedup.
//!
//! Paper claim (via ALPINE/gem5-X): analog crossbars speed up benchmark
//! convolutional networks by up to ~20×; LSTMs and transformers gain
//! less because a smaller fraction of their operations offloads.

use xlda_syssim::study::{amdahl_sweep, benchmark_suite, SpeedupRow};
use xlda_syssim::workload::{cnn_trace, hdc_trace, lstm_trace, mann_trace, transformer_trace};

/// Complete Sec. V output.
#[derive(Debug, Clone)]
pub struct SecV {
    /// Per-workload speedup rows.
    pub rows: Vec<SpeedupRow>,
    /// Amdahl sensitivity (offload fraction, speedup).
    pub amdahl: Vec<(f64, f64)>,
}

/// Runs the benchmark suite and the Amdahl sweep.
pub fn run(quick: bool) -> SecV {
    let layers = if quick { 6 } else { 12 };
    let rows = benchmark_suite(&[
        cnn_trace(layers),
        lstm_trace(if quick { 8 } else { 32 }, 512),
        transformer_trace(if quick { 2 } else { 6 }, 512, 256),
        hdc_trace(617, 4096, 26),
        mann_trace(65_000, 64, 256, 125),
    ]);
    let amdahl = amdahl_sweep(if quick {
        &[0.5, 0.99]
    } else {
        &[0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999]
    });
    SecV { rows, amdahl }
}

/// Prints the study tables.
pub fn print(r: &SecV) {
    println!("Sec. V — end-to-end speedup from tightly coupled analog crossbars");
    crate::rule(86);
    println!(
        "{:>18} {:>10} {:>12} {:>12} {:>9} {:>9}",
        "workload", "offload", "CPU time", "accel time", "speedup", "E gain"
    );
    for row in &r.rows {
        println!(
            "{:>18} {:>9.1}% {:>12} {:>12} {:>8.1}x {:>8.1}x",
            row.workload,
            row.offload_fraction * 100.0,
            crate::fmt_time(row.cpu_time_s),
            crate::fmt_time(row.accel_time_s),
            row.speedup,
            row.energy_gain
        );
    }
    println!();
    println!("Amdahl sensitivity (synthetic workload):");
    for (f, s) in &r.amdahl {
        println!("  offloadable {:>5.1}% -> speedup {s:.2}x", f * 100.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cnn_hits_papers_headline_band() {
        let r = run(true);
        let cnn = &r.rows[0];
        assert!(
            cnn.speedup > 8.0 && cnn.speedup < 40.0,
            "cnn speedup {}",
            cnn.speedup
        );
        // CNN gains more than LSTM (less offloadable work).
        assert!(cnn.speedup > r.rows[1].speedup);
        // All accelerated workloads gain something.
        assert!(r.rows.iter().all(|row| row.speedup > 1.0));
    }

    #[test]
    fn amdahl_monotone() {
        let r = run(true);
        assert!(r.amdahl[1].1 > r.amdahl[0].1);
    }
}
