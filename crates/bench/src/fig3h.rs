//! Fig. 3H — inference latency across device/architecture platforms at
//! (attempted) iso-accuracy.
//!
//! Paper shape: batch-1 GPU inference is slow; batching amortizes; the
//! TPU-GPU hybrid is a nominal improvement; the 3-bit FeFET CAM is the
//! superior design point (smaller iso-accuracy HVs); 2-bit needs longer
//! HVs and is slower than 3-bit; the 1-bit SRAM CAM has the lowest
//! latency but cannot reach iso-accuracy; a GPU MLP reaches accuracy but
//! no latency advantage.
//!
//! Accuracies are *simulated* with the `xlda-hdc` stack on the hard
//! synthetic dataset, then fed into the cross-layer evaluators of
//! `xlda-core`.

use crate::hard_isolet;
use xlda_core::evaluate::{HdcScenario, Scenario};
use xlda_core::fom::Candidate;
use xlda_core::triage::{rank, Objective, Ranked};
use xlda_device::fefet::Fefet;
use xlda_hdc::cam::{Aggregation, CamAm, CamSearchConfig};
use xlda_hdc::encode::{Encoder, EncoderConfig};
use xlda_hdc::model::{Distance, HdcModel};
use xlda_num::rng::Rng64;

/// Complete Fig. 3H output.
#[derive(Debug, Clone)]
pub struct Fig3h {
    /// Scenario with simulated accuracies.
    pub scenario: HdcScenario,
    /// Evaluated candidates (latency/energy/area/accuracy).
    pub candidates: Vec<Candidate>,
    /// Triage ranking under a latency-first objective with an
    /// iso-accuracy floor.
    pub ranking: Vec<Ranked>,
}

fn cam_accuracy(data: &xlda_datagen::Dataset, hv_dim: usize, bits: u8, seed: u64) -> f64 {
    let encoder = Encoder::new(&EncoderConfig {
        dim_in: data.dim(),
        hv_dim,
        ..EncoderConfig::default()
    });
    let model = HdcModel::train(&encoder, data, bits, 2);
    let device = Fefet::silicon(); // measured 94 mV sigma included
                                   // Closed-loop program-and-verify at a quarter of the level spacing —
                                   // the software/hardware co-design step that lets multi-bit CAMs
                                   // reach iso-accuracy (paper ref. [4]).
    let spacing = device.window() / ((1u32 << bits) - 1).max(1) as f64;
    let config = CamSearchConfig {
        bits_per_cell: bits,
        subarray_cols: 64,
        device,
        aggregation: Aggregation::DistanceSum { resolution: None },
        verify_tolerance: Some(spacing / 4.0),
    };
    CamAm::program(&model, &config, &mut Rng64::new(seed)).accuracy(&encoder, data)
}

/// Runs accuracy simulations and builds the platform comparison.
pub fn run(quick: bool) -> Fig3h {
    let data = hard_isolet(quick);
    let scale = if quick { 4 } else { 1 };
    // Iso-accuracy sizing per Fig. 3C: 3-bit cells hold accuracy at the
    // software dimension; 2-bit cells need twice the HV length; 1-bit
    // cannot reach iso-accuracy even then.
    let hv_sw = 4096 / scale;
    let hv_3b = 4096 / scale;
    let hv_2b = 8192 / scale;
    let hv_1b = 4096 / scale;

    // Software reference accuracy (full precision, cosine).
    let encoder = Encoder::new(&EncoderConfig {
        dim_in: data.dim(),
        hv_dim: hv_sw,
        ..EncoderConfig::default()
    });
    let acc_sw =
        HdcModel::train(&encoder, &data, 32, 1).accuracy_with(&encoder, &data, Distance::Cosine);

    let scenario = HdcScenario {
        dim_in: data.dim(),
        classes: data.classes,
        hv_dim_sw: hv_sw,
        hv_dim_3b: hv_3b,
        hv_dim_2b: hv_2b,
        hv_dim_1b: hv_1b,
        acc_sw,
        acc_3b: cam_accuracy(&data, hv_3b, 3, 1),
        acc_2b: cam_accuracy(&data, hv_2b, 2, 2),
        acc_1b: cam_accuracy(&data, hv_1b, 1, 3),
        // The MLP baseline reaches software accuracy (proxied by the
        // dataset's centroid skyline).
        acc_mlp: data.centroid_accuracy(),
        tech: xlda_circuit::tech::TechNode::n40(),
    };
    let candidates = scenario.candidates().expect("fig3h scenario models");
    // Near-iso-accuracy floor: the hard synthetic operating point leaves
    // a slightly wider gap than the paper's datasets (see EXPERIMENTS.md).
    let floor = scenario.acc_sw - 0.08;
    let ranking = rank(&candidates, &Objective::latency_first(Some(floor)));
    Fig3h {
        scenario,
        candidates,
        ranking,
    }
}

/// Prints the platform comparison and ranking.
pub fn print(result: &Fig3h) {
    println!("Fig. 3H — inference latency across platforms (iso-accuracy sizing)");
    crate::rule(86);
    println!(
        "{:>26} {:>12} {:>12} {:>10} {:>10}",
        "platform", "latency", "energy", "area mm2", "accuracy"
    );
    for c in &result.candidates {
        println!(
            "{:>26} {:>12} {:>12} {:>10.3} {:>9.1}%",
            c.name,
            crate::fmt_time(c.fom.latency_s),
            crate::fmt_energy(c.fom.energy_j),
            c.fom.area_mm2,
            c.fom.accuracy * 100.0
        );
    }
    println!();
    println!("Triage ranking (latency-first, iso-accuracy floor):");
    for (i, r) in result.ranking.iter().enumerate() {
        let flag = if r.meets_floor {
            ""
        } else {
            "  [below accuracy floor]"
        };
        println!("  {}. {}{}", i + 1, r.name, flag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3h_winner_is_3bit_cam() {
        let r = run(true);
        assert_eq!(r.ranking[0].name, "3b FeFET CAM", "{:#?}", r.ranking);
        // 1-bit misses the accuracy floor.
        assert!(r.scenario.acc_1b < r.scenario.acc_sw - 0.08);
        // 3-bit holds near-iso-accuracy.
        assert!(r.scenario.acc_3b >= r.scenario.acc_sw - 0.08);
    }
}
