//! Fig. 4E — few-shot accuracy vs hash signature length, plus the
//! latency advantage of the in-memory pipeline.
//!
//! Paper shape: short hashes lose accuracy versus the software cosine
//! skyline; slightly longer signatures recover iso-accuracy; the RRAM
//! pipeline delivers a large latency improvement.

use xlda_core::evaluate::{MannScenario, Scenario};
use xlda_core::fom::Candidate;
use xlda_datagen::fewshot::FewShotSpec;
use xlda_mann::controller::{train_controller, TrainConfig};
use xlda_mann::episode::{accuracy_vs_bits, evaluate, EpisodeConfig, MannVariant};

/// Complete Fig. 4E output.
#[derive(Debug, Clone)]
pub struct Fig4e {
    /// Software cosine skyline accuracy.
    pub cosine_accuracy: f64,
    /// (hash bits, accuracy) for the RRAM ternary-LSH pipeline.
    pub rram_sweep: Vec<(usize, f64)>,
    /// (hash bits, accuracy) for exact software LSH.
    pub software_sweep: Vec<(usize, f64)>,
    /// Latency/energy candidates (GPU vs RRAM pipeline).
    pub platforms: Vec<Candidate>,
}

/// Runs the hash-length sweep and the platform comparison.
pub fn run(quick: bool) -> Fig4e {
    let spec = FewShotSpec {
        background_classes: if quick { 6 } else { 16 },
        eval_classes: if quick { 8 } else { 20 },
        samples_per_class: if quick { 6 } else { 14 },
        ..FewShotSpec::default()
    };
    let data = spec.generate();
    let (net, _) = train_controller(
        &data,
        &TrainConfig {
            epochs: if quick { 2 } else { 5 },
            ..TrainConfig::default()
        },
    );
    let config = EpisodeConfig {
        episodes: if quick { 8 } else { 40 },
        ..EpisodeConfig::default()
    };
    let bit_axis: &[usize] = if quick {
        &[16, 128]
    } else {
        &[16, 32, 64, 128, 256, 512]
    };

    let cosine_accuracy = evaluate(&net, &data, MannVariant::SoftwareCosine, &config);
    let software_sweep = accuracy_vs_bits(&net, &data, bit_axis, &config, |bits| {
        MannVariant::SoftwareLsh { bits }
    });
    let rram_sweep = accuracy_vs_bits(&net, &data, bit_axis, &config, |bits| {
        MannVariant::RramTlsh {
            bits,
            relax_decades: 3.0,
            threshold_frac: 0.2,
        }
    });

    let best_rram = rram_sweep.iter().map(|&(_, a)| a).fold(0.0f64, f64::max);
    let platforms = MannScenario {
        acc_software: cosine_accuracy,
        acc_rram: best_rram,
        ..MannScenario::default()
    }
    .candidates()
    .expect("fig4e scenario models");
    Fig4e {
        cosine_accuracy,
        rram_sweep,
        software_sweep,
        platforms,
    }
}

/// Prints the figure series.
pub fn print(r: &Fig4e) {
    println!("Fig. 4E — few-shot accuracy vs hash length (5-way 1-shot)");
    crate::rule(64);
    println!("software cosine skyline: {:.1}%", r.cosine_accuracy * 100.0);
    println!("{:>10} {:>14} {:>14}", "bits", "software LSH", "RRAM TLSH");
    for ((bits, sw), (_, rram)) in r.software_sweep.iter().zip(&r.rram_sweep) {
        println!("{:>10} {:>13.1}% {:>13.1}%", bits, sw * 100.0, rram * 100.0);
    }
    println!();
    println!("Platform comparison:");
    for c in &r.platforms {
        println!(
            "{:>24}: latency {}, energy {}, accuracy {:.1}%",
            c.name,
            crate::fmt_time(c.fom.latency_s),
            crate::fmt_energy(c.fom.energy_j),
            c.fom.accuracy * 100.0
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longer_hashes_approach_cosine_and_rram_is_fast() {
        let r = run(true);
        let (short_bits, short_acc) = r.rram_sweep[0];
        let (long_bits, long_acc) = *r.rram_sweep.last().expect("sweep");
        assert!(long_bits > short_bits);
        assert!(
            long_acc >= short_acc - 0.02,
            "short {short_acc} long {long_acc}"
        );
        // Longer hashes approach the skyline.
        assert!(
            long_acc >= r.cosine_accuracy - 0.15,
            "long {} cosine {}",
            long_acc,
            r.cosine_accuracy
        );
        // Latency advantage of the in-memory pipeline.
        let gpu = &r.platforms[0].fom;
        let rram = &r.platforms[1].fom;
        assert!(rram.latency_s < gpu.latency_s / 10.0);
    }
}
