//! Fig. 6 / Sec. VII — top-down triage and bottom-up device levers.
//!
//! Top-down: profile workloads, recommend an architecture lane, and
//! prioritize device metrics. Bottom-up: perturb device parameters of a
//! CAM matchline and rank the levers by application-visible impact.

use xlda_circuit::matchline::MatchlineConfig;
use xlda_circuit::tech::TechNode;
use xlda_core::profile::{
    device_priorities, recommend, ArchRecommendation, DeviceMetric, WorkloadProfile,
};
use xlda_core::sensitivity::{
    matchline_sensitivity, prioritized_levers, DeviceLever, SensitivityRow,
};
use xlda_syssim::workload::{cnn_trace, hdc_trace, mann_trace, transformer_trace};

/// Top-down row: one workload's profile and recommendation.
#[derive(Debug, Clone, PartialEq)]
pub struct TriageRow {
    /// Workload name.
    pub workload: String,
    /// Computational profile.
    pub profile: WorkloadProfile,
    /// Recommended architecture lane.
    pub recommendation: ArchRecommendation,
    /// Device metrics in priority order.
    pub metrics: Vec<DeviceMetric>,
}

/// Complete Fig. 6 output.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// Top-down triage rows.
    pub triage: Vec<TriageRow>,
    /// Bottom-up matchline sensitivity rows (2× perturbations).
    pub sensitivity: Vec<SensitivityRow>,
    /// Device levers ranked by impact.
    pub levers: Vec<(DeviceLever, f64)>,
}

/// Runs both directions of the Fig. 6 flow.
pub fn run(_quick: bool) -> Fig6 {
    let workloads = [
        (cnn_trace(8), 0.0001),
        (transformer_trace(4, 512, 256), 0.0001),
        (hdc_trace(617, 4096, 500), 0.001),
        (mann_trace(65_000, 64, 256, 5000), 0.05),
    ];
    let triage = workloads
        .iter()
        .map(|(w, wpr)| {
            let profile = WorkloadProfile::from_workload(w, *wpr);
            TriageRow {
                workload: w.name.clone(),
                recommendation: recommend(&profile),
                metrics: device_priorities(&profile),
                profile,
            }
        })
        .collect();

    let config = MatchlineConfig::default();
    let tech = TechNode::n40();
    let sensitivity = matchline_sensitivity(&config, &tech, 128, 2.0);
    let levers = prioritized_levers(&config, &tech, 128, 2.0);
    Fig6 {
        triage,
        sensitivity,
        levers,
    }
}

/// Prints both flows.
pub fn print(r: &Fig6) {
    println!("Fig. 6 — top-down: workload profile -> architecture & device priorities");
    crate::rule(96);
    println!(
        "{:>18} {:>8} {:>8} {:>8} {:>22} {:>22}",
        "workload", "MVM", "search", "other", "architecture", "top device metric"
    );
    for t in &r.triage {
        println!(
            "{:>18} {:>7.0}% {:>7.0}% {:>7.0}% {:>22} {:>22}",
            t.workload,
            t.profile.mvm_fraction * 100.0,
            t.profile.search_fraction * 100.0,
            t.profile.other_fraction * 100.0,
            format!("{:?}", t.recommendation),
            format!("{:?}", t.metrics[0]),
        );
    }
    println!();
    println!("Bottom-up: device levers on a 128-cell CAM matchline (2x perturbation)");
    crate::rule(78);
    println!(
        "{:>10} {:>16} {:>16} {:>18}",
        "lever", "latency change", "margin change", "mismatch headroom"
    );
    for s in &r.sensitivity {
        println!(
            "{:>10} {:>15.1}% {:>15.1}% {:>17.1}%",
            s.lever.label(),
            s.latency_change * 100.0,
            s.margin_change * 100.0,
            s.mismatch_limit_change * 100.0
        );
    }
    println!();
    println!("Lever priority (total application-visible impact):");
    for (i, (lever, impact)) in r.levers.iter().enumerate() {
        println!("  {}. {} (impact {impact:.2})", i + 1, lever.label());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triage_covers_the_lanes() {
        let r = run(true);
        assert_eq!(r.triage.len(), 4);
        // CNN -> crossbar; HDC (many classes) -> mixed pipeline.
        assert_eq!(r.triage[0].recommendation, ArchRecommendation::CrossbarImc);
        assert_eq!(
            r.triage[2].recommendation,
            ArchRecommendation::CrossbarPlusAm
        );
        // Sensitivity covers all three levers, ranked.
        assert_eq!(r.sensitivity.len(), 3);
        assert_eq!(r.levers.len(), 3);
        assert!(r.levers[0].1 >= r.levers[2].1);
    }
}
