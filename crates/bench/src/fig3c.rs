//! Fig. 3C — HDC classification accuracy vs HV element precision.
//!
//! Paper shape: accuracy drops at 1-2 bit precision; 3-4 bits match the
//! full-precision (32-bit) reference.

use crate::hard_isolet;
use xlda_hdc::encode::{Encoder, EncoderConfig};
use xlda_hdc::model::{Distance, HdcModel};

/// One precision point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionPoint {
    /// HV element precision in bits.
    pub bits: u8,
    /// Test accuracy.
    pub accuracy: f64,
}

/// Runs the precision sweep.
pub fn run(quick: bool) -> Vec<PrecisionPoint> {
    let data = hard_isolet(quick);
    let hv_dim = if quick { 1024 } else { 4096 };
    let encoder = Encoder::new(&EncoderConfig {
        dim_in: data.dim(),
        hv_dim,
        ..EncoderConfig::default()
    });
    let bits_axis: &[u8] = if quick {
        &[1, 3, 32]
    } else {
        &[1, 2, 3, 4, 8, 32]
    };
    bits_axis
        .iter()
        .map(|&bits| {
            let model = HdcModel::train(&encoder, &data, bits, 2);
            PrecisionPoint {
                bits,
                accuracy: model.accuracy_with(&encoder, &data, Distance::Cosine),
            }
        })
        .collect()
}

/// Prints the figure series.
pub fn print(points: &[PrecisionPoint]) {
    println!("Fig. 3C — HDC accuracy vs HV element precision");
    crate::rule(48);
    println!("{:>12} {:>12}", "precision", "accuracy");
    for p in points {
        let label = if p.bits >= 32 {
            "full".to_string()
        } else {
            format!("{}-bit", p.bits)
        };
        println!("{label:>12} {:>11.1}%", p.accuracy * 100.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3c_shape_holds() {
        let pts = run(true);
        let acc = |b: u8| {
            pts.iter()
                .find(|p| p.bits == b)
                .expect("precision point")
                .accuracy
        };
        // 3-bit reaches (near-)iso-accuracy with full precision...
        assert!(
            acc(3) >= acc(32) - 0.04,
            "3b {} vs full {}",
            acc(3),
            acc(32)
        );
        // ...while 1-bit loses accuracy.
        assert!(acc(1) < acc(32) - 0.02, "1b {} vs full {}", acc(1), acc(32));
    }
}
