//! Fig. 3F — segment-vote aggregation errors: accuracy vs HV length and
//! CAM subarray size.
//!
//! Paper shape: for a fixed HV length, accuracy improves as the subarray
//! (matchline) gets longer, reaching its maximum when a single subarray
//! holds the whole hypervector ("max"); short subarrays induce
//! aggregation errors that longer HVs can compensate.

use crate::hard_isolet;
use xlda_device::fefet::Fefet;
use xlda_hdc::cam::{Aggregation, CamAm, CamSearchConfig};
use xlda_hdc::encode::{Encoder, EncoderConfig};
use xlda_hdc::model::HdcModel;
use xlda_num::rng::Rng64;

/// One grid cell of the sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregationPoint {
    /// Hypervector length.
    pub hv_dim: usize,
    /// Subarray size in cells (equals `hv_dim` for "max").
    pub subarray: usize,
    /// CAM classification accuracy.
    pub accuracy: f64,
}

/// Runs the HV-length × subarray-size grid.
pub fn run(quick: bool) -> Vec<AggregationPoint> {
    let data = hard_isolet(quick);
    let hv_dims: &[usize] = if quick { &[1024] } else { &[512, 1024, 2048] };
    let subarrays: &[usize] = if quick {
        &[8, 64, usize::MAX]
    } else {
        &[8, 16, 32, 64, 128, 256, usize::MAX]
    };
    let mut out = Vec::new();
    for &hv_dim in hv_dims {
        let encoder = Encoder::new(&EncoderConfig {
            dim_in: data.dim(),
            hv_dim,
            ..EncoderConfig::default()
        });
        let model = HdcModel::train(&encoder, &data, 3, 1);
        // Grid points are independent: fan the subarray axis out.
        out.extend(xlda_core::sweep::par_map(subarrays, |&sub| {
            let cols = sub.min(hv_dim);
            let config = CamSearchConfig {
                bits_per_cell: 3,
                subarray_cols: cols,
                device: Fefet::silicon().with_sigma(0.0),
                aggregation: Aggregation::SubarrayVote,
                verify_tolerance: None,
            };
            let cam = CamAm::program(&model, &config, &mut Rng64::new(0x3f));
            AggregationPoint {
                hv_dim,
                subarray: cols,
                accuracy: cam.accuracy(&encoder, &data),
            }
        }));
    }
    out
}

/// Prints the figure grid.
pub fn print(points: &[AggregationPoint]) {
    println!("Fig. 3F-ii — accuracy vs HV length and CAM subarray size (vote aggregation)");
    crate::rule(70);
    println!("{:>8} {:>10} {:>10}", "HV dim", "subarray", "accuracy");
    for p in points {
        let sub = if p.subarray == p.hv_dim {
            "max".to_string()
        } else {
            p.subarray.to_string()
        };
        println!("{:>8} {:>10} {:>9.1}%", p.hv_dim, sub, p.accuracy * 100.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_subarrays_help() {
        let pts = run(true);
        let hv = pts[0].hv_dim;
        let acc = |sub: usize| {
            pts.iter()
                .find(|p| p.hv_dim == hv && p.subarray == sub.min(hv))
                .expect("grid point")
                .accuracy
        };
        let tiny = acc(8);
        let max = acc(usize::MAX);
        assert!(max >= tiny, "tiny {tiny} max {max}");
        assert!(max > 0.5, "max accuracy {max}");
    }
}
