//! Fig. 4C — ternary LSH suppression of unstable hash bits.
//!
//! Paper shape: conductance relaxation flips hash bits whose projection
//! lands near the hashing plane; marking those bits "don't care" (TLSH)
//! removes most of the instability at a modest information cost that
//! grows with the threshold.

use xlda_crossbar::stochastic::StochasticProjection;
use xlda_device::rram::Rram;
use xlda_num::rng::Rng64;

/// One threshold point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StabilityPoint {
    /// Don't-care threshold as a fraction of mean |projection|.
    pub threshold_frac: f64,
    /// Fraction of binary LSH bits that flipped under relaxation.
    pub lsh_flip_rate: f64,
    /// Fraction of definite (non-X) TLSH bits that flipped.
    pub tlsh_flip_rate: f64,
    /// Fraction of signature bits marked don't-care.
    pub dont_care_rate: f64,
}

/// Sweeps the TLSH threshold under device relaxation.
pub fn run(quick: bool) -> Vec<StabilityPoint> {
    let dev = Rram::taox();
    let (dim, bits, inputs) = if quick { (64, 64, 10) } else { (128, 256, 40) };
    let thresholds: &[f64] = if quick {
        &[0.0, 0.3]
    } else {
        &[0.0, 0.1, 0.2, 0.3, 0.5]
    };
    let mut rng = Rng64::new(0x4c);
    let probe_inputs: Vec<Vec<f64>> = (0..inputs)
        .map(|_| (0..dim).map(|_| rng.uniform()).collect())
        .collect();

    thresholds
        .iter()
        .map(|&frac| {
            let mut flips_lsh = 0usize;
            let mut total_lsh = 0usize;
            let mut flips_tlsh = 0usize;
            let mut total_definite = 0usize;
            let mut x_bits = 0usize;
            let mut total_bits = 0usize;
            for (trial, x) in probe_inputs.iter().enumerate() {
                let proj =
                    StochasticProjection::new(dim, bits, &dev, &mut Rng64::new(77 + trial as u64));
                let mut drifted = proj.clone();
                drifted.relax(6.0, &mut rng);
                let thr = proj.calibrate_threshold(std::slice::from_ref(x), frac);
                let h0 = proj.hash(x);
                let h1 = drifted.hash(x);
                let t0 = proj.ternary_hash(x, thr);
                let t1 = drifted.hash(x);
                for i in 0..bits {
                    total_lsh += 1;
                    if h0[i] != h1[i] {
                        flips_lsh += 1;
                    }
                    total_bits += 1;
                    if t0[i] == 0 {
                        x_bits += 1;
                    } else {
                        total_definite += 1;
                        if t0[i] != t1[i] {
                            flips_tlsh += 1;
                        }
                    }
                }
            }
            StabilityPoint {
                threshold_frac: frac,
                lsh_flip_rate: flips_lsh as f64 / total_lsh.max(1) as f64,
                tlsh_flip_rate: flips_tlsh as f64 / total_definite.max(1) as f64,
                dont_care_rate: x_bits as f64 / total_bits.max(1) as f64,
            }
        })
        .collect()
}

/// Prints the figure series.
pub fn print(points: &[StabilityPoint]) {
    println!("Fig. 4C — unstable hash bits: LSH vs ternary LSH under relaxation");
    crate::rule(72);
    println!(
        "{:>12} {:>12} {:>12} {:>12}",
        "threshold", "LSH flips", "TLSH flips", "X fraction"
    );
    for p in points {
        println!(
            "{:>12.2} {:>11.1}% {:>11.1}% {:>11.1}%",
            p.threshold_frac,
            p.lsh_flip_rate * 100.0,
            p.tlsh_flip_rate * 100.0,
            p.dont_care_rate * 100.0
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tlsh_reduces_flip_rate() {
        let pts = run(true);
        let base = pts.iter().find(|p| p.threshold_frac == 0.0).expect("base");
        let tlsh = pts.iter().find(|p| p.threshold_frac == 0.3).expect("tlsh");
        assert!(base.lsh_flip_rate > 0.0, "relaxation should flip bits");
        assert!(
            tlsh.tlsh_flip_rate < base.lsh_flip_rate,
            "tlsh {} vs lsh {}",
            tlsh.tlsh_flip_rate,
            base.lsh_flip_rate
        );
        assert!(tlsh.dont_care_rate > 0.0 && tlsh.dont_care_rate < 0.9);
    }
}
