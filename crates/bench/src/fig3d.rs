//! Fig. 3D — multi-bit FeFET CAM-cell conductance vs input deviation.
//!
//! Paper shape: at a perfect match only leakage flows; conductance grows
//! quadratically with the deviation between applied and programmed
//! voltage, mimicking a squared-Euclidean distance term.

use xlda_device::fefet::Fefet;

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConductancePoint {
    /// Voltage deviation from the programmed state (V).
    pub delta_v: f64,
    /// Cell conductance (S).
    pub conductance: f64,
    /// Ideal quadratic reference (S).
    pub quadratic_ref: f64,
}

/// Sweeps the 3-bit (8-state) cell across the V_th window.
pub fn run(quick: bool) -> Vec<ConductancePoint> {
    let dev = Fefet::silicon();
    let steps = if quick { 9 } else { 25 };
    let k = dev.g_on / (dev.window() * dev.window());
    (0..steps)
        .map(|i| {
            let delta_v = dev.window() * (i as f64 / (steps - 1) as f64);
            ConductancePoint {
                delta_v,
                conductance: dev.cam_cell_conductance(delta_v),
                quadratic_ref: (dev.g_off + k * delta_v * delta_v).min(dev.g_on),
            }
        })
        .collect()
}

/// Prints the figure series.
pub fn print(points: &[ConductancePoint]) {
    println!("Fig. 3D — FeFET CAM cell conductance vs voltage deviation (3-bit cell)");
    crate::rule(64);
    println!("{:>10} {:>14} {:>14}", "dV (V)", "G (µS)", "quadratic (µS)");
    for p in points {
        println!(
            "{:>10.3} {:>14.4} {:>14.4}",
            p.delta_v,
            p.conductance * 1e6,
            p.quadratic_ref * 1e6
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_is_quadratic_and_monotone() {
        let pts = run(true);
        for w in pts.windows(2) {
            assert!(w[1].conductance >= w[0].conductance);
        }
        for p in &pts {
            assert!((p.conductance - p.quadratic_ref).abs() < 1e-12);
        }
        // Perfect match leaks only; full deviation saturates at g_on.
        let dev = Fefet::silicon();
        assert!((pts[0].conductance - dev.g_off).abs() < 1e-15);
        assert!((pts.last().expect("points").conductance - dev.g_on).abs() < 1e-9);
    }
}
