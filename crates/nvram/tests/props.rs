//! Property-based tests for the RAM array model.

use proptest::prelude::*;
use xlda_nvram::{OptTarget, RamArray, RamCell, RamConfig};

fn arb_cell() -> impl Strategy<Value = RamCell> {
    prop::sample::select(vec![
        RamCell::Sram6T,
        RamCell::Rram1T1R,
        RamCell::Pcm1T1R,
        RamCell::Mram1T1R,
        RamCell::Fefet1T,
        RamCell::Nand3D { layers: 32 },
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_config_organizes_with_positive_foms(
        cell in arb_cell(),
        capacity_kib in 64u64..65_536,
    ) {
        let config = RamConfig {
            capacity_bits: capacity_kib * 8 * 1024,
            word_bits: 64,
            cell,
            ..RamConfig::default()
        };
        for target in [
            OptTarget::ReadLatency,
            OptTarget::ReadEnergy,
            OptTarget::Area,
            OptTarget::ReadEdp,
        ] {
            let ram = RamArray::auto_organize(&config, target).expect("organizes");
            let r = ram.report();
            prop_assert!(r.read_latency_s > 0.0 && r.read_latency_s.is_finite());
            prop_assert!(r.write_latency_s > 0.0);
            prop_assert!(r.read_energy_j > 0.0);
            prop_assert!(r.write_energy_j > 0.0);
            prop_assert!(r.area_mm2 > 0.0);
            prop_assert!(r.leakage_w > 0.0);
            // Organization covers the capacity.
            let bits = (ram.sub_rows * ram.sub_cols * ram.mats) as u64;
            prop_assert!(bits >= config.capacity_bits);
        }
    }

    #[test]
    fn optimizer_beats_or_ties_other_targets_on_its_axis(
        cell in arb_cell(),
        capacity_mib in 1u64..32,
    ) {
        let config = RamConfig {
            capacity_bits: (capacity_mib * 8) << 20,
            word_bits: 64,
            cell,
            ..RamConfig::default()
        };
        let lat = RamArray::auto_organize(&config, OptTarget::ReadLatency)
            .expect("organizes")
            .report();
        let area = RamArray::auto_organize(&config, OptTarget::Area)
            .expect("organizes")
            .report();
        prop_assert!(lat.read_latency_s <= area.read_latency_s + 1e-15);
        prop_assert!(area.area_mm2 <= lat.area_mm2 + 1e-12);
    }

    #[test]
    fn bigger_capacity_never_shrinks_area(cell in arb_cell(), capacity_mib in 1u64..16) {
        let mk = |mib: u64| {
            RamArray::auto_organize(
                &RamConfig {
                    capacity_bits: (mib * 8) << 20,
                    word_bits: 64,
                    cell,
                    ..RamConfig::default()
                },
                OptTarget::Area,
            )
            .expect("organizes")
            .report()
        };
        prop_assert!(mk(capacity_mib * 2).area_mm2 > mk(capacity_mib).area_mm2);
    }
}

mod lifetime_props {
    use proptest::prelude::*;
    use xlda_nvram::lifetime::{estimate, WriteTraffic};
    use xlda_nvram::{RamCell, RamConfig};

    proptest! {
        #[test]
        fn lifetime_scales_inversely_with_traffic(
            mbps in 0.1f64..1000.0,
            leveling in 0.01f64..1.0,
            capacity_mib in 1u64..256,
        ) {
            let config = RamConfig {
                capacity_bits: (capacity_mib * 8) << 20,
                cell: RamCell::Rram1T1R,
                ..RamConfig::default()
            };
            let t1 = WriteTraffic { bytes_per_second: mbps * 1e6, leveling };
            let t2 = WriteTraffic { bytes_per_second: 2.0 * mbps * 1e6, leveling };
            let e1 = estimate(&config, &t1);
            let e2 = estimate(&config, &t2);
            prop_assert!(e1.seconds > 0.0 && e1.seconds.is_finite());
            prop_assert!((e1.seconds / e2.seconds - 2.0).abs() < 1e-6);
            // Years field is consistent.
            prop_assert!((e1.years * 365.25 * 86400.0 - e1.seconds).abs() < 1.0);
        }

        #[test]
        fn better_leveling_never_hurts(
            mbps in 0.1f64..100.0,
            l_lo in 0.01f64..0.5,
        ) {
            let config = RamConfig {
                cell: RamCell::Pcm1T1R,
                ..RamConfig::default()
            };
            let worse = estimate(&config, &WriteTraffic { bytes_per_second: mbps * 1e6, leveling: l_lo });
            let better = estimate(&config, &WriteTraffic { bytes_per_second: mbps * 1e6, leveling: l_lo * 2.0 });
            prop_assert!(better.seconds >= worse.seconds);
        }
    }
}
