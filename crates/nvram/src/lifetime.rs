//! Endurance-limited lifetime estimation (the NVMExplorer lane).
//!
//! The paper's tooling catalog credits NVMExplorer with estimating
//! "memory lifetime based on memory traffic" (Sec. VI), and its top-down
//! flow asks "are data traffic patterns write heavy, thereby prioritizing
//! device endurance?" (Sec. VII). This module answers quantitatively:
//! given an array, its device endurance, write traffic, and a
//! wear-leveling quality factor, how long until the first cells wear out?

use crate::{RamCell, RamConfig};

/// Write-traffic description of a deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteTraffic {
    /// Sustained write bandwidth into the array (B/s).
    pub bytes_per_second: f64,
    /// Wear-leveling efficiency in `(0, 1]`: 1.0 spreads writes
    /// perfectly across all cells; small values concentrate them
    /// (hot-spotting).
    pub leveling: f64,
}

impl WriteTraffic {
    /// Validates the description.
    pub fn is_valid(&self) -> bool {
        self.bytes_per_second >= 0.0 && self.leveling > 0.0 && self.leveling <= 1.0
    }
}

/// Lifetime estimate for one configuration.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LifetimeEstimate {
    /// Time until the most-written cell exhausts its endurance (s).
    pub seconds: f64,
    /// Convenience: the same in years.
    pub years: f64,
    /// Full-array rewrites per second implied by the traffic.
    pub rewrites_per_second: f64,
}

/// Seconds per Julian year.
const YEAR_S: f64 = 365.25 * 86400.0;

/// Estimates endurance-limited lifetime.
///
/// With perfect leveling every cell absorbs
/// `traffic / capacity_bytes` writes per second; imperfect leveling
/// concentrates traffic by `1 / leveling`. Lifetime is
/// `endurance / per-cell write rate`. Volatile SRAM reports effectively
/// unlimited lifetime (its 1e16 endurance).
///
/// # Panics
///
/// Panics on an invalid traffic description or zero-capacity config.
pub fn estimate(config: &RamConfig, traffic: &WriteTraffic) -> LifetimeEstimate {
    assert!(traffic.is_valid(), "invalid traffic description");
    assert!(config.capacity_bits > 0, "zero-capacity array");
    let capacity_bytes = config.capacity_bits as f64 / 8.0;
    let rewrites_per_second = traffic.bytes_per_second / capacity_bytes;
    let endurance = config.cell.device().endurance();
    if traffic.bytes_per_second == 0.0 {
        return LifetimeEstimate {
            seconds: f64::INFINITY,
            years: f64::INFINITY,
            rewrites_per_second: 0.0,
        };
    }
    let per_cell_rate = rewrites_per_second / traffic.leveling;
    let seconds = endurance / per_cell_rate;
    LifetimeEstimate {
        seconds,
        years: seconds / YEAR_S,
        rewrites_per_second,
    }
}

/// Whether the configuration survives `required_years` under the given
/// traffic — the cull predicate the Sec. VII flow applies to write-heavy
/// workloads.
pub fn survives(config: &RamConfig, traffic: &WriteTraffic, required_years: f64) -> bool {
    estimate(config, traffic).years >= required_years
}

/// Ranks candidate cells by lifetime under the given traffic,
/// longest-lived first.
pub fn rank_by_lifetime(
    cells: &[RamCell],
    capacity_bits: u64,
    traffic: &WriteTraffic,
) -> Vec<(RamCell, LifetimeEstimate)> {
    let mut rows: Vec<(RamCell, LifetimeEstimate)> = cells
        .iter()
        .map(|&cell| {
            let config = RamConfig {
                capacity_bits,
                cell,
                ..RamConfig::default()
            };
            (cell, estimate(&config, traffic))
        })
        .collect();
    rows.sort_by(|a, b| b.1.seconds.total_cmp(&a.1.seconds));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traffic(mbps: f64, leveling: f64) -> WriteTraffic {
        WriteTraffic {
            bytes_per_second: mbps * 1e6,
            leveling,
        }
    }

    fn cfg(cell: RamCell) -> RamConfig {
        RamConfig {
            capacity_bits: 8 << 20, // 1 MiB
            cell,
            ..RamConfig::default()
        }
    }

    #[test]
    fn flash_wears_out_fast_under_write_heavy_traffic() {
        // 100 MB/s into 1 MiB of NOR flash (1e5 endurance): hours, not
        // years.
        let est = estimate(&cfg(RamCell::Nand3D { layers: 64 }), &traffic(100.0, 1.0));
        assert!(est.years < 0.01, "flash lifetime {} years", est.years);
        // The same traffic on MRAM (1e15 endurance) is a non-issue.
        let mram = estimate(&cfg(RamCell::Mram1T1R), &traffic(100.0, 1.0));
        assert!(mram.years > 100.0, "mram lifetime {} years", mram.years);
    }

    #[test]
    fn poor_leveling_shortens_lifetime_proportionally() {
        let good = estimate(&cfg(RamCell::Rram1T1R), &traffic(10.0, 1.0));
        let bad = estimate(&cfg(RamCell::Rram1T1R), &traffic(10.0, 0.1));
        assert!((good.seconds / bad.seconds - 10.0).abs() < 1e-6);
    }

    #[test]
    fn bigger_arrays_live_longer_at_fixed_traffic() {
        let small = estimate(&cfg(RamCell::Rram1T1R), &traffic(10.0, 1.0));
        let big_cfg = RamConfig {
            capacity_bits: 64 << 20,
            cell: RamCell::Rram1T1R,
            ..RamConfig::default()
        };
        let big = estimate(&big_cfg, &traffic(10.0, 1.0));
        assert!(big.seconds > 7.0 * small.seconds);
    }

    #[test]
    fn zero_traffic_is_immortal() {
        let est = estimate(&cfg(RamCell::Pcm1T1R), &traffic(0.0, 1.0));
        assert!(est.seconds.is_infinite());
        assert!(survives(&cfg(RamCell::Pcm1T1R), &traffic(0.0, 1.0), 1000.0));
    }

    #[test]
    fn ranking_puts_endurance_champions_first() {
        let rows = rank_by_lifetime(
            &[
                RamCell::Nand3D { layers: 64 },
                RamCell::Mram1T1R,
                RamCell::Rram1T1R,
            ],
            8 << 20,
            &traffic(50.0, 0.9),
        );
        assert_eq!(rows[0].0, RamCell::Mram1T1R);
        assert_eq!(rows[2].0, RamCell::Nand3D { layers: 64 });
    }

    #[test]
    fn survives_matches_estimate() {
        let c = cfg(RamCell::Rram1T1R);
        let t = traffic(5.0, 1.0);
        let est = estimate(&c, &t);
        assert!(survives(&c, &t, est.years * 0.9));
        assert!(!survives(&c, &t, est.years * 1.1));
    }

    #[test]
    #[should_panic(expected = "invalid traffic")]
    fn bad_leveling_panics() {
        estimate(
            &cfg(RamCell::Rram1T1R),
            &WriteTraffic {
                bytes_per_second: 1.0,
                leveling: 0.0,
            },
        );
    }
}
