//! NVSim/DESTINY-style analytical RAM array model (paper Sec. VI).
//!
//! Estimates performance, energy, and area of random-access memories
//! built from the technologies in [`xlda_device`], across a hierarchical
//! organization (subarrays → mats → banks) with H-tree routing, for both
//! planar (2-D) and stacked (3-D) arrays. This covers the "memory lane"
//! of the Fig. 1 design space: evaluating a new (possibly multi-level)
//! cell inside a conventional memory hierarchy.
//!
//! # Examples
//!
//! ```
//! use xlda_nvram::{RamCell, RamConfig, RamArray, OptTarget};
//!
//! let config = RamConfig {
//!     capacity_bits: 16 << 20, // 2 MiB
//!     word_bits: 64,
//!     cell: RamCell::Rram1T1R,
//!     ..RamConfig::default()
//! };
//! let ram = RamArray::auto_organize(&config, OptTarget::ReadLatency)?;
//! assert!(ram.report().read_latency_s > 0.0);
//! # Ok::<(), xlda_nvram::RamError>(())
//! ```

pub mod lifetime;

use xlda_circuit::decoder::Decoder;
use xlda_circuit::hoist::{ExactCache, RepeatedWireCache};
use xlda_circuit::senseamp::SenseAmp;
use xlda_circuit::tech::TechNode;
use xlda_circuit::wire::{RepeatedWire, Wire};
use xlda_device::fefet::Fefet;
use xlda_device::flash::Flash;
use xlda_device::mram::Mram;
use xlda_device::pcm::Pcm;
use xlda_device::rram::Rram;
use xlda_device::sram::Sram;
use xlda_device::MemoryDevice;
use xlda_num::memo_cache;

memo_cache!(
    static RAM_ORG: (u64, usize, RamCell, OptTarget, u64) => Result<(usize, usize), RamError>,
    "nvram.auto_organize"
);

/// Storage-cell style for a RAM array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum RamCell {
    /// 6T SRAM.
    Sram6T,
    /// 1T1R RRAM.
    Rram1T1R,
    /// 1T1R PCM.
    Pcm1T1R,
    /// 1T1R STT-MRAM.
    Mram1T1R,
    /// 1T FeFET (three-terminal, logic-compatible).
    Fefet1T,
    /// 3D NAND flash with the given number of stacked layers.
    Nand3D {
        /// Stack layer count.
        layers: u8,
    },
    /// Monolithic 3-D stacked RRAM (vertical crosspoint, selector-less) —
    /// the HfO_x vertical structure the paper cites for cost-effective 3-D
    /// crosspoint architectures enabling monolithic 3-D ICs.
    Rram3D {
        /// Stack layer count.
        layers: u8,
    },
}

impl RamCell {
    /// The device model behind the cell.
    pub fn device(&self) -> Box<dyn MemoryDevice + Send + Sync> {
        match self {
            RamCell::Sram6T => Box::new(Sram::cell_6t()),
            RamCell::Rram1T1R => Box::new(Rram::taox()),
            RamCell::Pcm1T1R => Box::new(Pcm::gst()),
            RamCell::Mram1T1R => Box::new(Mram::stt()),
            RamCell::Fefet1T => Box::new(Fefet::beol()),
            RamCell::Nand3D { .. } => Box::new(Flash::nand3d()),
            RamCell::Rram3D { .. } => Box::new(Rram::hfox()),
        }
    }

    /// Effective planar footprint per bit in F², after 3-D amortization
    /// and multi-level-cell packing.
    pub fn area_f2_per_bit(&self) -> f64 {
        match self {
            RamCell::Sram6T => 146.0,
            RamCell::Rram1T1R => 12.0,
            RamCell::Pcm1T1R => 16.0,
            RamCell::Mram1T1R => 30.0,
            RamCell::Fefet1T => 10.0,
            RamCell::Nand3D { layers } => 16.0 / (*layers as f64).max(1.0),
            // Selector-less vertical crosspoint: 4F² footprint amortized
            // over the stack.
            RamCell::Rram3D { layers } => 4.0 / (*layers as f64).max(1.0),
        }
    }

    /// Stack layer count (1 for planar cells).
    pub fn layers(&self) -> u8 {
        match self {
            RamCell::Nand3D { layers } | RamCell::Rram3D { layers } => (*layers).max(1),
            _ => 1,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            RamCell::Sram6T => "SRAM-6T".to_string(),
            RamCell::Rram1T1R => "RRAM-1T1R".to_string(),
            RamCell::Pcm1T1R => "PCM-1T1R".to_string(),
            RamCell::Mram1T1R => "MRAM-1T1R".to_string(),
            RamCell::Fefet1T => "FeFET-1T".to_string(),
            RamCell::Nand3D { layers } => format!("3D-NAND-{layers}L"),
            RamCell::Rram3D { layers } => format!("3D-RRAM-{layers}L"),
        }
    }
}

/// What the organization search minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptTarget {
    /// Minimize read latency.
    ReadLatency,
    /// Minimize read energy.
    ReadEnergy,
    /// Minimize total area.
    Area,
    /// Minimize read energy-delay product.
    ReadEdp,
}

/// RAM configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RamConfig {
    /// Total capacity in bits.
    pub capacity_bits: u64,
    /// Access word width in bits.
    pub word_bits: usize,
    /// Storage cell.
    pub cell: RamCell,
    /// Process node.
    pub tech: TechNode,
}

impl Default for RamConfig {
    /// 1 MiB of RRAM accessed 64 bits at a time, at 40 nm.
    fn default() -> Self {
        Self {
            capacity_bits: 8 << 20,
            word_bits: 64,
            cell: RamCell::Rram1T1R,
            tech: TechNode::n40(),
        }
    }
}

/// Errors from the RAM model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RamError {
    /// Capacity or word width is zero.
    EmptyConfig,
    /// Capacity is too small to hold even one word.
    CapacityBelowWord,
}

impl std::fmt::Display for RamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RamError::EmptyConfig => write!(f, "capacity and word width must be positive"),
            RamError::CapacityBelowWord => write!(f, "capacity smaller than one word"),
        }
    }
}

impl std::error::Error for RamError {}

/// A fully organized RAM: subarray geometry plus mat/bank tiling.
#[derive(Debug, Clone)]
pub struct RamArray {
    config: RamConfig,
    /// Rows per subarray.
    pub sub_rows: usize,
    /// Columns per subarray.
    pub sub_cols: usize,
    /// Number of subarrays (mats) tiling the capacity.
    pub mats: usize,
}

/// RAM figures of merit.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RamReport {
    /// Random read latency (s).
    pub read_latency_s: f64,
    /// Word write latency (s).
    pub write_latency_s: f64,
    /// Read energy per word (J).
    pub read_energy_j: f64,
    /// Write energy per word (J).
    pub write_energy_j: f64,
    /// Total area (mm²).
    pub area_mm2: f64,
    /// Leakage power (W).
    pub leakage_w: f64,
}

impl RamArray {
    /// Builds a RAM with a fixed subarray geometry.
    ///
    /// # Errors
    ///
    /// Returns [`RamError`] for degenerate configurations.
    pub fn with_subarray(
        config: &RamConfig,
        sub_rows: usize,
        sub_cols: usize,
    ) -> Result<Self, RamError> {
        if config.capacity_bits == 0 || config.word_bits == 0 || sub_rows == 0 || sub_cols == 0 {
            return Err(RamError::EmptyConfig);
        }
        if config.capacity_bits < config.word_bits as u64 {
            return Err(RamError::CapacityBelowWord);
        }
        let bits_per_sub = (sub_rows * sub_cols) as u64;
        let mats = config.capacity_bits.div_ceil(bits_per_sub).max(1) as usize;
        Ok(Self {
            config: config.clone(),
            sub_rows,
            sub_cols,
            mats,
        })
    }

    /// Searches subarray geometries (powers of two, 128..=4096 per side)
    /// and returns the organization minimizing `target`.
    ///
    /// The 36-geometry search re-runs identically for every sweep point
    /// sharing a (capacity, word, cell, target, node) tuple, so the
    /// winning subarray geometry is memoized process-wide; the returned
    /// array is rebuilt from the caller's config, which the key fully
    /// determines.
    ///
    /// # Errors
    ///
    /// Returns [`RamError`] for degenerate configurations.
    pub fn auto_organize(config: &RamConfig, target: OptTarget) -> Result<Self, RamError> {
        let _span = xlda_obs::span!("nvram.auto_organize");
        let (rows, cols) = RAM_ORG.get_or_insert_with(
            (
                config.capacity_bits,
                config.word_bits,
                config.cell,
                target,
                config.tech.memo_key(),
            ),
            || Self::auto_organize_uncached(config, target).map(|ram| (ram.sub_rows, ram.sub_cols)),
        )?;
        Self::with_subarray(config, rows, cols)
    }

    fn auto_organize_uncached(config: &RamConfig, target: OptTarget) -> Result<Self, RamError> {
        let mut best: Option<(f64, RamArray)> = None;
        for shift_r in 7..=12 {
            for shift_c in 7..=12 {
                let rows = 1usize << shift_r;
                let cols = 1usize << shift_c;
                if (rows * cols) as u64 > config.capacity_bits.max(1) * 4 {
                    continue;
                }
                let ram = Self::with_subarray(config, rows, cols)?;
                let rep = ram.report();
                let score = match target {
                    OptTarget::ReadLatency => rep.read_latency_s,
                    OptTarget::ReadEnergy => rep.read_energy_j,
                    OptTarget::Area => rep.area_mm2,
                    OptTarget::ReadEdp => rep.read_latency_s * rep.read_energy_j,
                };
                if best.as_ref().is_none_or(|(s, _)| score < *s) {
                    best = Some((score, ram));
                }
            }
        }
        match best {
            Some((_, ram)) => Ok(ram),
            None => Self::with_subarray(config, 128, 128),
        }
    }

    /// The configuration being modeled.
    pub fn config(&self) -> &RamConfig {
        &self.config
    }

    fn cell_edge_m(&self) -> f64 {
        (self.config.cell.area_f2_per_bit() * self.config.cell.layers() as f64).sqrt()
            * self.config.tech.feature_m()
    }

    fn wordline_cap(&self) -> f64 {
        let tech = &self.config.tech;
        let wl = Wire::new(self.sub_cols as f64 * self.cell_edge_m(), tech);
        wl.capacitance() + self.sub_cols as f64 * 0.15e-15
    }

    /// H-tree route length from the bank edge to a mat (half the bank
    /// edge), given the subarray footprint.
    fn route_len_m(&self, sub_area_m2: f64) -> f64 {
        let bank_edge_m = (sub_area_m2 * self.mats as f64).sqrt();
        (0.5 * bank_edge_m).max(1e-6)
    }

    /// Solves every sub-model that depends only on the subarray geometry
    /// — not on capacity or word width. This is the hoistable part of
    /// [`report`](RamArray::report): the 36-geometry search of
    /// [`auto_organize`](RamArray::auto_organize) revisits the same
    /// handful of `(rows, cols, cell, tech)` tuples for every sweep
    /// point, so [`RamBatchSolver`] caches these solves per geometry and
    /// recomposes only the per-point remainder (mat tiling, routing,
    /// word energies).
    fn geom_solve(&self) -> GeomSolve {
        let tech = &self.config.tech;
        let dev = self.config.cell.device();
        let sa = SenseAmp::current_mode(tech);
        let wl_cap = self.wordline_cap();
        let dec = Decoder::new(self.sub_rows, wl_cap, tech);

        let f2 = tech.f2_area_m2();
        let cells =
            (self.sub_rows * self.sub_cols) as f64 * self.config.cell.area_f2_per_bit() * f2;
        let sa_count = (self.sub_cols / 8).max(1) as f64; // 8:1 column mux
        let sub_area_m2 = (cells + sa_count * sa.area() + dec.area()) * 1.15;

        // Bitline development: cell current charges/discharges the line.
        let bl = Wire::new(self.sub_rows as f64 * self.cell_edge_m(), tech);
        let c_bl = bl.capacitance() + self.sub_rows as f64 * 0.1e-15;
        let i_cell = dev.g_on() * dev.read_voltage();
        let t_bl = c_bl * 0.1 * tech.vdd / i_cell.max(1e-9); // 100 mV swing
        let sub_read_latency_s = dec.delay() + t_bl + sa.latency(i_cell.max(sa.min_resolvable));

        GeomSolve {
            sub_area_m2,
            sub_read_latency_s,
            wl_switch_energy_j: tech.switch_energy(wl_cap),
            dec_delay_s: dec.delay(),
            dec_energy_j: dec.energy(),
            dec_leakage_w: dec.leakage_power(),
            sa_energy_j: sa.energy(),
            sa_leakage_w: sa.leakage_power(),
            write_verify: if dev.max_bits_per_cell() > 1 {
                2.0
            } else {
                1.0
            },
            dev_write_latency_s: dev.write_latency(),
            dev_write_energy_j: dev.write_energy(),
            cell_leak_per_bit_w: match self.config.cell {
                RamCell::Sram6T => Sram::cell_6t().leakage_per_cell,
                _ => 1e-13,
            },
        }
    }

    /// Composes the full report from hoisted geometry solves plus the
    /// per-point route. Every expression matches the pre-refactor
    /// monolithic `report()` term for term, so scalar and batch callers
    /// get bit-identical figures.
    fn report_from(&self, g: &GeomSolve, route: &RepeatedWire) -> RamReport {
        let read_latency = route.delay() + g.sub_read_latency_s + route.delay();
        let write_latency = route.delay() + g.dec_delay_s + g.write_verify * g.dev_write_latency_s;

        let bits = self.config.word_bits as f64;
        let read_energy = 2.0 * bits / 64.0 * route.energy() * 64.0 // word routed on 64-bit bus
            + g.dec_energy_j
            + bits * (g.sa_energy_j + g.wl_switch_energy_j / 8.0);
        let write_energy = route.energy() * bits + g.dec_energy_j + bits * g.dev_write_energy_j;

        let cells_leak = self.config.capacity_bits as f64 * g.cell_leak_per_bit_w;
        // Idle mats are power-gated to ~5 % of their active leakage.
        let periph_leak =
            (1.0 + 0.05 * (self.mats as f64 - 1.0)) * (g.dec_leakage_w + 8.0 * g.sa_leakage_w);

        RamReport {
            read_latency_s: read_latency,
            write_latency_s: write_latency,
            read_energy_j: read_energy,
            write_energy_j: write_energy,
            area_mm2: g.sub_area_m2 * self.mats as f64 * 1e6,
            leakage_w: cells_leak + periph_leak,
        }
    }

    /// Full figure-of-merit report.
    pub fn report(&self) -> RamReport {
        let g = self.geom_solve();
        let route = RepeatedWire::new(self.route_len_m(g.sub_area_m2), 250e-6, &self.config.tech);
        self.report_from(&g, &route)
    }
}

/// Capacity-independent sub-solves of one subarray geometry.
///
/// Everything in here is a pure function of `(sub_rows, sub_cols, cell,
/// tech)` — the mat count, word width, and total capacity do not enter —
/// which is what makes it safe to hoist across the points of a columnar
/// sweep batch.
#[derive(Debug, Clone, Copy)]
struct GeomSolve {
    sub_area_m2: f64,
    sub_read_latency_s: f64,
    wl_switch_energy_j: f64,
    dec_delay_s: f64,
    dec_energy_j: f64,
    dec_leakage_w: f64,
    sa_energy_j: f64,
    sa_leakage_w: f64,
    write_verify: f64,
    dev_write_latency_s: f64,
    dev_write_energy_j: f64,
    cell_leak_per_bit_w: f64,
}

/// Batch-scoped NVM organization solver for the columnar sweep kernels.
///
/// [`RamArray::auto_organize`] runs a 36-geometry search whose
/// decoder/sense-amp/bitline sub-solves depend only on `(rows, cols,
/// cell, tech)` — not on the swept capacity — so across a batch of
/// sweep points the search revisits the same geometry solves over and
/// over. This solver hoists them into [`ExactCache`]s keyed by full
/// equality (no quantization, unlike the global memo layer), leaving
/// only mat tiling, H-tree routing, and word-energy composition per
/// point. Results are bit-identical to the scalar
/// `auto_organize(..).report()` path by construction: cached values are
/// produced by the same pure solves on identical inputs, and
/// composition shares [`RamArray`]'s own expressions.
///
/// Intended lifetime is one sweep chunk; create per batch (it is not
/// `Sync`) and let hits amortize across the chunk's points.
#[derive(Debug, Clone, Default)]
pub struct RamBatchSolver {
    geoms: ExactCache<(usize, usize, RamCell, TechNode), GeomSolve>,
    routes: RepeatedWireCache,
}

impl RamBatchSolver {
    /// An empty solver.
    pub fn new() -> Self {
        Self::default()
    }

    /// The report of `ram`, composed from cached geometry/route solves.
    pub fn report_for(&mut self, ram: &RamArray) -> RamReport {
        let key = (
            ram.sub_rows,
            ram.sub_cols,
            ram.config.cell,
            ram.config.tech.clone(),
        );
        let g = *self.geoms.get_or_insert_with(key, |_| ram.geom_solve());
        let route = self
            .routes
            .get(ram.route_len_m(g.sub_area_m2), 250e-6, &ram.config.tech);
        ram.report_from(&g, &route)
    }

    /// Batch equivalent of `RamArray::auto_organize(config, target)?
    /// .report()`: runs the identical geometry search (same candidate
    /// set, same skip rule, same strict-`<` tie-break) with the
    /// sub-solves cached, returning the winning report directly.
    ///
    /// # Errors
    ///
    /// Returns [`RamError`] for degenerate configurations, exactly as
    /// the scalar path does.
    pub fn auto_organize_report(
        &mut self,
        config: &RamConfig,
        target: OptTarget,
    ) -> Result<RamReport, RamError> {
        let _span = xlda_obs::span!("nvram.auto_organize");
        let mut best: Option<(f64, RamReport)> = None;
        for shift_r in 7..=12 {
            for shift_c in 7..=12 {
                let rows = 1usize << shift_r;
                let cols = 1usize << shift_c;
                if (rows * cols) as u64 > config.capacity_bits.max(1) * 4 {
                    continue;
                }
                let ram = RamArray::with_subarray(config, rows, cols)?;
                let rep = self.report_for(&ram);
                let score = match target {
                    OptTarget::ReadLatency => rep.read_latency_s,
                    OptTarget::ReadEnergy => rep.read_energy_j,
                    OptTarget::Area => rep.area_mm2,
                    OptTarget::ReadEdp => rep.read_latency_s * rep.read_energy_j,
                };
                if best.as_ref().is_none_or(|(s, _)| score < *s) {
                    best = Some((score, rep));
                }
            }
        }
        match best {
            Some((_, rep)) => Ok(rep),
            None => {
                let ram = RamArray::with_subarray(config, 128, 128)?;
                Ok(self.report_for(&ram))
            }
        }
    }
}

impl PartialEq for RamArray {
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config
            && self.sub_rows == other.sub_rows
            && self.sub_cols == other.sub_cols
            && self.mats == other.mats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(cell: RamCell, capacity: u64) -> RamConfig {
        RamConfig {
            capacity_bits: capacity,
            word_bits: 64,
            cell,
            tech: TechNode::n40(),
        }
    }

    #[test]
    fn auto_organize_produces_valid_ram() {
        let ram = RamArray::auto_organize(&RamConfig::default(), OptTarget::ReadLatency)
            .expect("default organizes");
        let rep = ram.report();
        assert!(rep.read_latency_s > 0.0 && rep.read_latency_s < 1e-6);
        assert!(rep.area_mm2 > 0.0);
        assert!((ram.sub_rows * ram.sub_cols * ram.mats) as u64 >= 8 << 20);
    }

    #[test]
    fn sram_fastest_flash_slowest_write() {
        let sram = RamArray::auto_organize(&cfg(RamCell::Sram6T, 1 << 20), OptTarget::ReadLatency)
            .unwrap()
            .report();
        let nand = RamArray::auto_organize(
            &cfg(RamCell::Nand3D { layers: 64 }, 1 << 20),
            OptTarget::ReadLatency,
        )
        .unwrap()
        .report();
        assert!(sram.write_latency_s < nand.write_latency_s / 100.0);
    }

    #[test]
    fn flash_is_poor_main_memory_but_dense() {
        // The paper's example: flash is dense but write latency rules it
        // out as CPU/GPU main memory.
        let rram = RamArray::auto_organize(&cfg(RamCell::Rram1T1R, 8 << 20), OptTarget::Area)
            .unwrap()
            .report();
        let nand = RamArray::auto_organize(
            &cfg(RamCell::Nand3D { layers: 64 }, 8 << 20),
            OptTarget::Area,
        )
        .unwrap()
        .report();
        assert!(nand.area_mm2 < rram.area_mm2);
        assert!(nand.write_latency_s > 100.0 * rram.write_latency_s);
    }

    #[test]
    fn capacity_scales_area_roughly_linearly() {
        let small = RamArray::auto_organize(&cfg(RamCell::Rram1T1R, 1 << 20), OptTarget::Area)
            .unwrap()
            .report();
        let big = RamArray::auto_organize(&cfg(RamCell::Rram1T1R, 16 << 20), OptTarget::Area)
            .unwrap()
            .report();
        let ratio = big.area_mm2 / small.area_mm2;
        assert!(ratio > 10.0 && ratio < 24.0, "ratio {ratio}");
    }

    #[test]
    fn latency_target_beats_area_target_on_latency() {
        let c = cfg(RamCell::Pcm1T1R, 32 << 20);
        let lat = RamArray::auto_organize(&c, OptTarget::ReadLatency).unwrap();
        let area = RamArray::auto_organize(&c, OptTarget::Area).unwrap();
        assert!(lat.report().read_latency_s <= area.report().read_latency_s);
        assert!(area.report().area_mm2 <= lat.report().area_mm2);
    }

    #[test]
    fn sram_leaks_most() {
        let sram = RamArray::auto_organize(&cfg(RamCell::Sram6T, 1 << 20), OptTarget::ReadLatency)
            .unwrap()
            .report();
        let fefet =
            RamArray::auto_organize(&cfg(RamCell::Fefet1T, 1 << 20), OptTarget::ReadLatency)
                .unwrap()
                .report();
        assert!(sram.leakage_w > 10.0 * fefet.leakage_w);
    }

    #[test]
    fn stacking_layers_shrinks_footprint() {
        let l16 = RamArray::auto_organize(
            &cfg(RamCell::Nand3D { layers: 16 }, 64 << 20),
            OptTarget::Area,
        )
        .unwrap()
        .report();
        let l128 = RamArray::auto_organize(
            &cfg(RamCell::Nand3D { layers: 128 }, 64 << 20),
            OptTarget::Area,
        )
        .unwrap()
        .report();
        assert!(l128.area_mm2 < l16.area_mm2);
    }

    fn assert_reports_bit_identical(a: &RamReport, b: &RamReport) {
        assert_eq!(a.read_latency_s.to_bits(), b.read_latency_s.to_bits());
        assert_eq!(a.write_latency_s.to_bits(), b.write_latency_s.to_bits());
        assert_eq!(a.read_energy_j.to_bits(), b.read_energy_j.to_bits());
        assert_eq!(a.write_energy_j.to_bits(), b.write_energy_j.to_bits());
        assert_eq!(a.area_mm2.to_bits(), b.area_mm2.to_bits());
        assert_eq!(a.leakage_w.to_bits(), b.leakage_w.to_bits());
    }

    #[test]
    fn batch_solver_matches_scalar_path_bit_for_bit() {
        let mut solver = RamBatchSolver::new();
        let cells = [
            RamCell::Sram6T,
            RamCell::Rram1T1R,
            RamCell::Fefet1T,
            RamCell::Nand3D { layers: 64 },
        ];
        let targets = [OptTarget::ReadLatency, OptTarget::Area, OptTarget::ReadEdp];
        for cell in cells {
            for capacity in [1u64 << 20, 8 << 20, (8 << 20) + 12_345] {
                for target in targets {
                    let config = cfg(cell, capacity);
                    let scalar = RamArray::auto_organize(&config, target)
                        .expect("organizes")
                        .report();
                    let batch = solver
                        .auto_organize_report(&config, target)
                        .expect("organizes");
                    assert_reports_bit_identical(&scalar, &batch);
                }
            }
        }
        // Hoisting actually happened: far fewer geometry solves than
        // (cells × capacities × targets × 36 search candidates).
        assert!(solver.geoms.len() <= 4 * 6 * 6);
    }

    #[test]
    fn batch_solver_reproduces_scalar_errors() {
        let mut solver = RamBatchSolver::new();
        for config in [
            RamConfig {
                capacity_bits: 0,
                ..RamConfig::default()
            },
            RamConfig {
                capacity_bits: 8,
                word_bits: 64,
                ..RamConfig::default()
            },
        ] {
            let scalar =
                RamArray::auto_organize(&config, OptTarget::ReadLatency).map(|ram| ram.report());
            let batch = solver.auto_organize_report(&config, OptTarget::ReadLatency);
            assert_eq!(scalar.unwrap_err(), batch.unwrap_err());
        }
    }

    #[test]
    fn degenerate_configs_error() {
        let c = RamConfig {
            capacity_bits: 0,
            ..RamConfig::default()
        };
        assert_eq!(
            RamArray::with_subarray(&c, 128, 128),
            Err(RamError::EmptyConfig)
        );
        let c2 = RamConfig {
            capacity_bits: 8,
            word_bits: 64,
            ..RamConfig::default()
        };
        assert_eq!(
            RamArray::with_subarray(&c2, 128, 128),
            Err(RamError::CapacityBelowWord)
        );
    }
}

#[cfg(test)]
mod monolithic_3d_tests {
    use super::*;

    #[test]
    fn monolithic_3d_rram_is_densest_nv_ram() {
        // Sec. II-A / DESTINY lane: vertical RRAM enables monolithic 3-D
        // ICs; stacking amortizes the 4F² crosspoint below every planar
        // cell — without flash's write penalty.
        let mk = |cell: RamCell| {
            RamArray::auto_organize(
                &RamConfig {
                    capacity_bits: (64 * 8) << 20,
                    cell,
                    ..RamConfig::default()
                },
                OptTarget::Area,
            )
            .expect("organizes")
            .report()
        };
        let planar = mk(RamCell::Rram1T1R);
        let stacked = mk(RamCell::Rram3D { layers: 8 });
        // Cells shrink 24x but decoders/sense-amps do not stack, so the
        // footprint gain saturates below the layer count — the
        // peripheral-dominated density ceiling DESTINY-style models
        // expose.
        assert!(stacked.area_mm2 < planar.area_mm2 / 2.0);
        // Unlike 3D NAND, writes stay RRAM-fast.
        let nand = mk(RamCell::Nand3D { layers: 64 });
        assert!(stacked.write_latency_s < nand.write_latency_s / 100.0);
    }

    #[test]
    fn more_layers_more_density() {
        let mk = |layers: u8| {
            RamArray::auto_organize(
                &RamConfig {
                    capacity_bits: (16 * 8) << 20,
                    cell: RamCell::Rram3D { layers },
                    ..RamConfig::default()
                },
                OptTarget::Area,
            )
            .expect("organizes")
            .report()
            .area_mm2
        };
        assert!(mk(16) < mk(4));
    }
}
