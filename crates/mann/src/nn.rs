//! Minimal convolutional neural network with SGD training.
//!
//! The MANN controller is a small CNN; the paper's study realizes it on
//! RRAM crossbars. We implement exactly the pieces needed — 3×3 same-pad
//! convolution, 2×2 max pooling, ReLU, fully connected layers, softmax
//! cross-entropy — with hand-written backpropagation, so the whole
//! pipeline is self-contained and deterministic.

use xlda_num::rng::Rng64;

/// A channels × height × width activation tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    /// Channel count.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
    /// Row-major data, channel-major outermost.
    pub data: Vec<f64>,
}

impl Tensor {
    /// Creates a zero tensor.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn zeros(c: usize, h: usize, w: usize) -> Self {
        assert!(c > 0 && h > 0 && w > 0, "tensor dims must be positive");
        Self {
            c,
            h,
            w,
            data: vec![0.0; c * h * w],
        }
    }

    /// Wraps existing data.
    ///
    /// # Panics
    ///
    /// Panics if the data length disagrees with the shape.
    pub fn from_vec(c: usize, h: usize, w: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), c * h * w, "data length mismatch");
        Self { c, h, w, data }
    }

    #[inline]
    fn at(&self, ch: usize, y: usize, x: usize) -> f64 {
        self.data[(ch * self.h + y) * self.w + x]
    }

    #[inline]
    fn at_mut(&mut self, ch: usize, y: usize, x: usize) -> &mut f64 {
        &mut self.data[(ch * self.h + y) * self.w + x]
    }
}

/// 3×3 same-padding convolution (stride 1).
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_c: usize,
    out_c: usize,
    /// Weights `[out_c][in_c][3][3]`, flattened.
    w: Vec<f64>,
    b: Vec<f64>,
}

impl Conv2d {
    /// He-initialized convolution layer.
    pub fn new(in_c: usize, out_c: usize, rng: &mut Rng64) -> Self {
        let fan_in = (in_c * 9) as f64;
        let sigma = (2.0 / fan_in).sqrt();
        Self {
            in_c,
            out_c,
            w: rng.normal_vec(out_c * in_c * 9, 0.0, sigma),
            b: vec![0.0; out_c],
        }
    }

    #[inline]
    fn wi(&self, o: usize, i: usize, dy: usize, dx: usize) -> usize {
        ((o * self.in_c + i) * 3 + dy) * 3 + dx
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if the input channel count mismatches.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        assert_eq!(input.c, self.in_c, "conv input channels");
        let mut out = Tensor::zeros(self.out_c, input.h, input.w);
        for o in 0..self.out_c {
            for y in 0..input.h {
                for x in 0..input.w {
                    let mut acc = self.b[o];
                    for i in 0..self.in_c {
                        for dy in 0..3usize {
                            let yy = y as i64 + dy as i64 - 1;
                            if yy < 0 || yy >= input.h as i64 {
                                continue;
                            }
                            for dx in 0..3usize {
                                let xx = x as i64 + dx as i64 - 1;
                                if xx < 0 || xx >= input.w as i64 {
                                    continue;
                                }
                                acc += self.w[self.wi(o, i, dy, dx)]
                                    * input.at(i, yy as usize, xx as usize);
                            }
                        }
                    }
                    *out.at_mut(o, y, x) = acc;
                }
            }
        }
        out
    }

    /// Backward pass: returns the input gradient and accumulates weight
    /// gradients into `gw`/`gb`.
    #[allow(clippy::needless_range_loop)] // nested spatial loops index several buffers
    fn backward(
        &self,
        input: &Tensor,
        grad_out: &Tensor,
        gw: &mut [f64],
        gb: &mut [f64],
    ) -> Tensor {
        let mut grad_in = Tensor::zeros(input.c, input.h, input.w);
        for o in 0..self.out_c {
            for y in 0..input.h {
                for x in 0..input.w {
                    let g = grad_out.at(o, y, x);
                    if g == 0.0 {
                        continue;
                    }
                    gb[o] += g;
                    for i in 0..self.in_c {
                        for dy in 0..3usize {
                            let yy = y as i64 + dy as i64 - 1;
                            if yy < 0 || yy >= input.h as i64 {
                                continue;
                            }
                            for dx in 0..3usize {
                                let xx = x as i64 + dx as i64 - 1;
                                if xx < 0 || xx >= input.w as i64 {
                                    continue;
                                }
                                let idx = self.wi(o, i, dy, dx);
                                gw[idx] += g * input.at(i, yy as usize, xx as usize);
                                *grad_in.at_mut(i, yy as usize, xx as usize) += g * self.w[idx];
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }

    /// Number of weight parameters.
    pub fn weight_count(&self) -> usize {
        self.w.len()
    }

    /// Flat weight view (for crossbar mapping): `[out_c][in_c][3][3]`.
    pub fn weights(&self) -> &[f64] {
        &self.w
    }

    /// Bias per output channel.
    pub fn bias(&self) -> &[f64] {
        &self.b
    }

    /// (input channels, output channels).
    pub fn shape(&self) -> (usize, usize) {
        (self.in_c, self.out_c)
    }
}

/// Fully connected layer.
#[derive(Debug, Clone)]
pub struct Linear {
    in_dim: usize,
    out_dim: usize,
    w: Vec<f64>,
    b: Vec<f64>,
}

impl Linear {
    /// He-initialized linear layer.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut Rng64) -> Self {
        let sigma = (2.0 / in_dim as f64).sqrt();
        Self {
            in_dim,
            out_dim,
            w: rng.normal_vec(in_dim * out_dim, 0.0, sigma),
            b: vec![0.0; out_dim],
        }
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics on input dimension mismatch.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim, "linear input dim");
        (0..self.out_dim)
            .map(|o| {
                let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
                self.b[o] + row.iter().zip(x).map(|(a, b)| a * b).sum::<f64>()
            })
            .collect()
    }

    fn backward(&self, x: &[f64], grad_out: &[f64], gw: &mut [f64], gb: &mut [f64]) -> Vec<f64> {
        let mut grad_in = vec![0.0; self.in_dim];
        for (o, gbo) in gb.iter_mut().enumerate().take(self.out_dim) {
            let g = grad_out[o];
            *gbo += g;
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            let grow = &mut gw[o * self.in_dim..(o + 1) * self.in_dim];
            for i in 0..self.in_dim {
                grow[i] += g * x[i];
                grad_in[i] += g * row[i];
            }
        }
        grad_in
    }

    /// Flat weight view (for crossbar mapping): `[out_dim][in_dim]`.
    pub fn weights(&self) -> &[f64] {
        &self.w
    }

    /// Bias per output.
    pub fn bias(&self) -> &[f64] {
        &self.b
    }

    /// (input dimension, output dimension).
    pub fn shape(&self) -> (usize, usize) {
        (self.in_dim, self.out_dim)
    }

    /// Number of weight parameters.
    pub fn weight_count(&self) -> usize {
        self.w.len()
    }
}

pub(crate) fn relu(x: &mut [f64]) {
    for v in x {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

fn relu_backward(activated: &[f64], grad: &mut [f64]) {
    for (g, &a) in grad.iter_mut().zip(activated) {
        if a <= 0.0 {
            *g = 0.0;
        }
    }
}

/// 2×2 max pooling (stride 2); returns output and argmax indices.
pub(crate) fn maxpool(input: &Tensor) -> (Tensor, Vec<usize>) {
    let (oh, ow) = (input.h / 2, input.w / 2);
    let mut out = Tensor::zeros(input.c, oh, ow);
    let mut arg = vec![0usize; input.c * oh * ow];
    for c in 0..input.c {
        for y in 0..oh {
            for x in 0..ow {
                let mut best = f64::NEG_INFINITY;
                let mut best_idx = 0usize;
                for dy in 0..2 {
                    for dx in 0..2 {
                        let iy = 2 * y + dy;
                        let ix = 2 * x + dx;
                        let idx = (c * input.h + iy) * input.w + ix;
                        if input.data[idx] > best {
                            best = input.data[idx];
                            best_idx = idx;
                        }
                    }
                }
                *out.at_mut(c, y, x) = best;
                arg[(c * oh + y) * ow + x] = best_idx;
            }
        }
    }
    (out, arg)
}

fn maxpool_backward(
    input_shape: (usize, usize, usize),
    arg: &[usize],
    grad_out: &Tensor,
) -> Tensor {
    let mut grad_in = Tensor::zeros(input_shape.0, input_shape.1, input_shape.2);
    for (i, &src) in arg.iter().enumerate() {
        grad_in.data[src] += grad_out.data[i];
    }
    grad_in
}

/// Numerically stable softmax.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let m = logits.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    let exps: Vec<f64> = logits.iter().map(|&l| (l - m).exp()).collect();
    let s: f64 = exps.iter().sum();
    exps.iter().map(|&e| e / s).collect()
}

/// The MANN controller CNN:
/// `conv(1→8) → relu → pool → conv(8→16) → relu → pool → fc(784→emb)
/// → relu → fc(emb→classes)`.
#[derive(Debug, Clone)]
pub struct SmallCnn {
    conv1: Conv2d,
    conv2: Conv2d,
    fc_emb: Linear,
    fc_out: Linear,
    side: usize,
    emb_dim: usize,
    classes: usize,
}

/// Cached activations from a training forward pass.
struct Caches {
    input: Tensor,
    a1: Tensor,
    arg1: Vec<usize>,
    p1: Tensor,
    a2: Tensor,
    arg2: Vec<usize>,
    p2: Tensor,
    flat: Vec<f64>,
    emb: Vec<f64>,
    logits: Vec<f64>,
}

impl SmallCnn {
    /// Builds the network for `side`×`side` single-channel images.
    ///
    /// # Panics
    ///
    /// Panics if `side` is not divisible by 4 or dims are zero.
    pub fn new(side: usize, emb_dim: usize, classes: usize, rng: &mut Rng64) -> Self {
        assert!(
            side.is_multiple_of(4) && side > 0,
            "side must be divisible by 4"
        );
        assert!(emb_dim > 0 && classes > 0, "dims must be positive");
        let flat = 16 * (side / 4) * (side / 4);
        Self {
            conv1: Conv2d::new(1, 8, rng),
            conv2: Conv2d::new(8, 16, rng),
            fc_emb: Linear::new(flat, emb_dim, rng),
            fc_out: Linear::new(emb_dim, classes, rng),
            side,
            emb_dim,
            classes,
        }
    }

    /// Embedding dimensionality.
    pub fn emb_dim(&self) -> usize {
        self.emb_dim
    }

    /// Number of classifier outputs (background classes).
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// First convolution layer.
    pub fn conv1(&self) -> &Conv2d {
        &self.conv1
    }

    /// Second convolution layer.
    pub fn conv2(&self) -> &Conv2d {
        &self.conv2
    }

    /// Embedding head.
    pub fn fc_emb(&self) -> &Linear {
        &self.fc_emb
    }

    /// Image side length the network expects.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Total weight count across all layers (the paper quotes >65 000
    /// weights realized as 130 000 RRAM devices for its model).
    pub fn weight_count(&self) -> usize {
        self.conv1.weight_count()
            + self.conv2.weight_count()
            + self.fc_emb.weight_count()
            + self.fc_out.weight_count()
    }

    fn forward_cached(&self, image: &[f64]) -> Caches {
        assert_eq!(image.len(), self.side * self.side, "image size mismatch");
        let input = Tensor::from_vec(1, self.side, self.side, image.to_vec());
        let mut a1 = self.conv1.forward(&input);
        relu(&mut a1.data);
        let (p1, arg1) = maxpool(&a1);
        let mut a2 = self.conv2.forward(&p1);
        relu(&mut a2.data);
        let (p2, arg2) = maxpool(&a2);
        let flat = p2.data.clone();
        let mut emb = self.fc_emb.forward(&flat);
        relu(&mut emb);
        let logits = self.fc_out.forward(&emb);
        Caches {
            input,
            a1,
            arg1,
            p1,
            a2,
            arg2,
            p2,
            flat,
            emb,
            logits,
        }
    }

    /// The L2-normalized embedding (feature vector) of an image.
    pub fn embed(&self, image: &[f64]) -> Vec<f64> {
        let c = self.forward_cached(image);
        let n = xlda_num::matrix::norm(&c.emb).max(1e-12);
        c.emb.iter().map(|&v| v / n).collect()
    }

    /// Class logits of an image.
    pub fn logits(&self, image: &[f64]) -> Vec<f64> {
        self.forward_cached(image).logits
    }

    /// One SGD step on a single example; returns the cross-entropy loss.
    ///
    /// # Panics
    ///
    /// Panics if `label >= classes` or the image size mismatches.
    pub fn train_step(&mut self, image: &[f64], label: usize, lr: f64) -> f64 {
        assert!(label < self.classes, "label out of range");
        let c = self.forward_cached(image);
        let probs = softmax(&c.logits);
        let loss = -(probs[label].max(1e-12)).ln();

        // dL/dlogits = probs - onehot
        let mut grad_logits = probs;
        grad_logits[label] -= 1.0;

        let mut gw_out = vec![0.0; self.fc_out.w.len()];
        let mut gb_out = vec![0.0; self.fc_out.b.len()];
        let mut grad_emb = self
            .fc_out
            .backward(&c.emb, &grad_logits, &mut gw_out, &mut gb_out);
        relu_backward(&c.emb, &mut grad_emb);

        let mut gw_emb = vec![0.0; self.fc_emb.w.len()];
        let mut gb_emb = vec![0.0; self.fc_emb.b.len()];
        let grad_flat = self
            .fc_emb
            .backward(&c.flat, &grad_emb, &mut gw_emb, &mut gb_emb);

        let grad_p2 = Tensor::from_vec(c.p2.c, c.p2.h, c.p2.w, grad_flat);
        let mut grad_a2 = maxpool_backward((c.a2.c, c.a2.h, c.a2.w), &c.arg2, &grad_p2);
        relu_backward(&c.a2.data, &mut grad_a2.data);

        let mut gw2 = vec![0.0; self.conv2.w.len()];
        let mut gb2 = vec![0.0; self.conv2.b.len()];
        let grad_p1 = self.conv2.backward(&c.p1, &grad_a2, &mut gw2, &mut gb2);

        let mut grad_a1 = maxpool_backward((c.a1.c, c.a1.h, c.a1.w), &c.arg1, &grad_p1);
        relu_backward(&c.a1.data, &mut grad_a1.data);

        let mut gw1 = vec![0.0; self.conv1.w.len()];
        let mut gb1 = vec![0.0; self.conv1.b.len()];
        let _ = self.conv1.backward(&c.input, &grad_a1, &mut gw1, &mut gb1);

        // SGD update.
        let upd = |w: &mut [f64], g: &[f64]| {
            for (wi, &gi) in w.iter_mut().zip(g) {
                *wi -= lr * gi;
            }
        };
        upd(&mut self.fc_out.w, &gw_out);
        upd(&mut self.fc_out.b, &gb_out);
        upd(&mut self.fc_emb.w, &gw_emb);
        upd(&mut self.fc_emb.b, &gb_emb);
        upd(&mut self.conv2.w, &gw2);
        upd(&mut self.conv2.b, &gb2);
        upd(&mut self.conv1.w, &gw1);
        upd(&mut self.conv1.b, &gb1);
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_indexing() {
        let mut t = Tensor::zeros(2, 3, 4);
        *t.at_mut(1, 2, 3) = 5.0;
        assert_eq!(t.at(1, 2, 3), 5.0);
        assert_eq!(t.data[23], 5.0);
    }

    #[test]
    fn conv_identity_kernel_passes_through() {
        let mut rng = Rng64::new(1);
        let mut conv = Conv2d::new(1, 1, &mut rng);
        conv.w = vec![0.0; 9];
        conv.w[4] = 1.0; // center tap
        conv.b = vec![0.0];
        let input = Tensor::from_vec(1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let out = conv.forward(&input);
        assert_eq!(out.data, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn maxpool_picks_maxima() {
        let input = Tensor::from_vec(1, 2, 2, vec![1.0, 5.0, 3.0, 2.0]);
        let (out, arg) = maxpool(&input);
        assert_eq!(out.data, vec![5.0]);
        assert_eq!(arg, vec![1]);
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn conv_gradient_check() {
        // Finite-difference check on a random weight.
        let mut rng = Rng64::new(2);
        let conv = Conv2d::new(2, 3, &mut rng);
        let input = Tensor::from_vec(2, 4, 4, rng.normal_vec(32, 0.0, 1.0));
        let loss = |c: &Conv2d| -> f64 { c.forward(&input).data.iter().map(|v| v * v).sum() };
        let out = conv.forward(&input);
        let grad_out = Tensor::from_vec(3, 4, 4, out.data.iter().map(|&v| 2.0 * v).collect());
        let mut gw = vec![0.0; conv.w.len()];
        let mut gb = vec![0.0; conv.b.len()];
        conv.backward(&input, &grad_out, &mut gw, &mut gb);
        let eps = 1e-5;
        for &idx in &[0usize, 7, 20, 53] {
            let mut c2 = conv.clone();
            c2.w[idx] += eps;
            let num = (loss(&c2) - loss(&conv)) / eps;
            assert!(
                (num - gw[idx]).abs() < 1e-2 * (1.0 + num.abs()),
                "w[{idx}]: numeric {num} vs analytic {}",
                gw[idx]
            );
        }
    }

    #[test]
    fn linear_gradient_check() {
        let mut rng = Rng64::new(3);
        let lin = Linear::new(5, 4, &mut rng);
        let x = rng.normal_vec(5, 0.0, 1.0);
        let loss = |l: &Linear| -> f64 { l.forward(&x).iter().map(|v| v * v).sum() };
        let out = lin.forward(&x);
        let grad_out: Vec<f64> = out.iter().map(|&v| 2.0 * v).collect();
        let mut gw = vec![0.0; lin.w.len()];
        let mut gb = vec![0.0; lin.b.len()];
        lin.backward(&x, &grad_out, &mut gw, &mut gb);
        let eps = 1e-6;
        for idx in [0usize, 9, 19] {
            let mut l2 = lin.clone();
            l2.w[idx] += eps;
            let num = (loss(&l2) - loss(&lin)) / eps;
            assert!(
                (num - gw[idx]).abs() < 1e-3 * (1.0 + num.abs()),
                "numeric {num} vs {}",
                gw[idx]
            );
        }
    }

    #[test]
    fn training_reduces_loss_on_toy_task() {
        let mut rng = Rng64::new(4);
        let mut net = SmallCnn::new(8, 16, 2, &mut rng);
        // Two trivially separable patterns.
        let a = vec![1.0; 64];
        let b = vec![0.0; 64];
        let first_loss = net.train_step(&a, 0, 0.01) + net.train_step(&b, 1, 0.01);
        for _ in 0..30 {
            net.train_step(&a, 0, 0.01);
            net.train_step(&b, 1, 0.01);
        }
        let final_loss = {
            let pa = softmax(&net.logits(&a));
            let pb = softmax(&net.logits(&b));
            -(pa[0].ln() + pb[1].ln())
        };
        assert!(final_loss < first_loss, "{final_loss} vs {first_loss}");
        // And classification is now correct.
        let pa = softmax(&net.logits(&a));
        assert!(pa[0] > 0.8);
    }

    #[test]
    fn embeddings_are_unit_norm() {
        let mut rng = Rng64::new(5);
        let net = SmallCnn::new(28, 64, 10, &mut rng);
        let img: Vec<f64> = (0..784).map(|i| (i % 7) as f64 / 7.0).collect();
        let e = net.embed(&img);
        assert_eq!(e.len(), 64);
        let n = xlda_num::matrix::norm(&e);
        assert!((n - 1.0).abs() < 1e-9 || n == 0.0);
    }

    #[test]
    fn weight_count_in_papers_ballpark() {
        // Paper: >65 000 weights for the Omniglot CNN model; a 96-d
        // embedding head puts our controller in the same ballpark.
        let mut rng = Rng64::new(6);
        let net = SmallCnn::new(28, 96, 64, &mut rng);
        assert!(net.weight_count() > 65_000, "{}", net.weight_count());
    }
}
