//! The CNN controller executed *on RRAM crossbars*.
//!
//! This is the paper's headline engineering feat for the MANN study: "all
//! essential compute tasks for a MANN model (CNN, hashing, and AM) were
//! realized via RRAM crossbars", with "the CNN model employed >65,000
//! weights that were realized via 130,000 RRAM devices, in 36, 64×64
//! crossbar arrays". This module performs the same mapping on the
//! simulated substrate:
//!
//! - every layer's weight matrix (convolutions via im2col, plus a bias
//!   row) is tiled into 64×64 differential crossbars from
//!   [`xlda_crossbar::Crossbar`] — two devices per weight, matching the
//!   paper's 2:1 device:weight ratio;
//! - inference runs each MVM through the analog path (programming
//!   variation, IR drop, DAC/ADC quantization, read noise), with ReLU,
//!   pooling, and normalization in the digital periphery.

use crate::nn::{maxpool, relu, SmallCnn, Tensor};
use xlda_crossbar::{Crossbar, CrossbarConfig, Fidelity};
use xlda_num::matrix::Matrix;
use xlda_num::rng::Rng64;

/// A weight matrix tiled onto fixed-size differential crossbars.
#[derive(Debug, Clone)]
struct TiledLayer {
    /// Tiles indexed `[row_tile][col_tile]`.
    tiles: Vec<Vec<Crossbar>>,
    /// Input rows (including the bias row).
    rows: usize,
    /// Output columns.
    cols: usize,
    tile: usize,
}

impl TiledLayer {
    /// Programs `w` (`rows x cols`, bias folded in by the caller) onto
    /// `tile x tile` crossbars.
    fn program(w: &Matrix, base: &CrossbarConfig, rng: &mut Rng64) -> Self {
        let tile = base.rows.min(base.cols);
        let row_tiles = w.rows().div_ceil(tile);
        let col_tiles = w.cols().div_ceil(tile);
        let mut tiles = Vec::with_capacity(row_tiles);
        for rt in 0..row_tiles {
            let mut row = Vec::with_capacity(col_tiles);
            for ct in 0..col_tiles {
                let r0 = rt * tile;
                let c0 = ct * tile;
                let r_len = tile.min(w.rows() - r0);
                let c_len = tile.min(w.cols() - c0);
                // Zero-pad partial tiles to the full crossbar geometry.
                let mut sub = Matrix::zeros(tile, tile);
                for r in 0..r_len {
                    for c in 0..c_len {
                        *sub.at_mut(r, c) = w.at(r0 + r, c0 + c);
                    }
                }
                let cfg = CrossbarConfig {
                    rows: tile,
                    cols: tile,
                    ..base.clone()
                };
                row.push(Crossbar::program(&cfg, &sub, rng));
            }
            tiles.push(row);
        }
        Self {
            tiles,
            rows: w.rows(),
            cols: w.cols(),
            tile,
        }
    }

    /// Computes `W^T x` through the tiles (row-tile partials accumulate
    /// digitally, as in the paper's multi-array summation).
    fn forward(&self, x: &[f64], fidelity: Fidelity) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "tiled layer input mismatch");
        let mut out = vec![0.0; self.cols];
        for (rt, tile_row) in self.tiles.iter().enumerate() {
            let r0 = rt * self.tile;
            let r_len = self.tile.min(self.rows - r0);
            let mut xin = vec![0.0; self.tile];
            xin[..r_len].copy_from_slice(&x[r0..r0 + r_len]);
            for (ct, xbar) in tile_row.iter().enumerate() {
                let partial = xbar.mvm(&xin, fidelity);
                let c0 = ct * self.tile;
                let c_len = self.tile.min(self.cols - c0);
                for c in 0..c_len {
                    out[c0 + c] += partial[c];
                }
            }
        }
        out
    }

    fn tile_count(&self) -> usize {
        self.tiles.iter().map(|r| r.len()).sum()
    }
}

/// Builds the im2col weight matrix of a 3×3 same-pad convolution:
/// rows = `in_c * 9 + 1` (patch + bias), cols = `out_c`.
fn conv_weight_matrix(conv: &crate::nn::Conv2d) -> Matrix {
    let (in_c, out_c) = conv.shape();
    let mut w = Matrix::zeros(in_c * 9 + 1, out_c);
    for o in 0..out_c {
        for i in 0..in_c {
            for k in 0..9 {
                *w.at_mut(i * 9 + k, o) = conv.weights()[(o * in_c + i) * 9 + k];
            }
        }
        *w.at_mut(in_c * 9, o) = conv.bias()[o];
    }
    w
}

/// Extracts the im2col patch (plus bias input 1.0) at pixel `(y, x)`.
fn patch(input: &Tensor, y: usize, x: usize, out: &mut [f64]) {
    let mut idx = 0;
    for i in 0..input.c {
        for dy in 0..3usize {
            let yy = y as i64 + dy as i64 - 1;
            for dx in 0..3usize {
                let xx = x as i64 + dx as i64 - 1;
                out[idx] = if yy < 0 || yy >= input.h as i64 || xx < 0 || xx >= input.w as i64 {
                    0.0
                } else {
                    input.data[(i * input.h + yy as usize) * input.w + xx as usize]
                };
                idx += 1;
            }
        }
    }
    out[idx] = 1.0; // bias input
}

/// The trained controller mapped onto crossbar tiles.
#[derive(Debug, Clone)]
pub struct CrossbarCnn {
    conv1: TiledLayer,
    conv2: TiledLayer,
    fc_emb: TiledLayer,
    side: usize,
    fidelity: Fidelity,
}

impl CrossbarCnn {
    /// Programs a trained [`SmallCnn`]'s layers onto crossbars.
    ///
    /// `base` fixes the tile geometry and non-ideality settings (the
    /// paper uses 64×64 tiles); `fidelity` selects the analog model used
    /// at inference time.
    pub fn program(
        net: &SmallCnn,
        base: &CrossbarConfig,
        fidelity: Fidelity,
        rng: &mut Rng64,
    ) -> Self {
        let conv1 = TiledLayer::program(&conv_weight_matrix(net.conv1()), base, rng);
        let conv2 = TiledLayer::program(&conv_weight_matrix(net.conv2()), base, rng);
        let (fc_in, fc_out) = net.fc_emb().shape();
        let mut wfc = Matrix::zeros(fc_in + 1, fc_out);
        for o in 0..fc_out {
            for i in 0..fc_in {
                *wfc.at_mut(i, o) = net.fc_emb().weights()[o * fc_in + i];
            }
            *wfc.at_mut(fc_in, o) = net.fc_emb().bias()[o];
        }
        let fc_emb = TiledLayer::program(&wfc, base, rng);
        Self {
            conv1,
            conv2,
            fc_emb,
            side: net.side(),
            fidelity,
        }
    }

    /// Total crossbar tiles across all layers (the paper's model used 36).
    pub fn tile_count(&self) -> usize {
        self.conv1.tile_count() + self.conv2.tile_count() + self.fc_emb.tile_count()
    }

    /// Total RRAM devices (two per mapped weight cell, differential).
    pub fn device_count(&self) -> usize {
        let per_tile = self.conv1.tiles[0][0].config().rows * self.conv1.tiles[0][0].config().cols;
        self.tile_count() * per_tile * 2
    }

    fn conv_forward(&self, layer: &TiledLayer, input: &Tensor, out_c: usize) -> Tensor {
        let mut out = Tensor::zeros(out_c, input.h, input.w);
        let mut buf = vec![0.0; layer.rows];
        for y in 0..input.h {
            for x in 0..input.w {
                patch(input, y, x, &mut buf);
                let acts = layer.forward(&buf, self.fidelity);
                for (o, &v) in acts.iter().enumerate() {
                    out.data[(o * input.h + y) * input.w + x] = v;
                }
            }
        }
        out
    }

    /// L2-normalized embedding computed entirely through crossbar MVMs.
    ///
    /// # Panics
    ///
    /// Panics if the image size disagrees with the programmed network.
    pub fn embed(&self, image: &[f64]) -> Vec<f64> {
        assert_eq!(image.len(), self.side * self.side, "image size mismatch");
        let input = Tensor::from_vec(1, self.side, self.side, image.to_vec());
        let mut a1 = self.conv_forward(&self.conv1, &input, self.conv1.cols);
        relu(&mut a1.data);
        let (p1, _) = maxpool(&a1);
        let mut a2 = self.conv_forward(&self.conv2, &p1, self.conv2.cols);
        relu(&mut a2.data);
        let (p2, _) = maxpool(&a2);
        let mut flat = p2.data;
        flat.push(1.0); // bias input
        let mut emb = self.fc_emb.forward(&flat, self.fidelity);
        relu(&mut emb);
        let n = xlda_num::matrix::norm(&emb).max(1e-12);
        emb.iter().map(|&v| v / n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{train_controller, TrainConfig};
    use xlda_datagen::fewshot::FewShotSpec;
    use xlda_num::matrix::cosine_similarity;

    fn trained() -> (SmallCnn, xlda_datagen::fewshot::ImageSet) {
        let data = FewShotSpec {
            background_classes: 6,
            eval_classes: 6,
            samples_per_class: 6,
            ..FewShotSpec::default()
        }
        .generate();
        let (net, _) = train_controller(
            &data,
            &TrainConfig {
                epochs: 2,
                ..TrainConfig::default()
            },
        );
        (net, data)
    }

    fn clean_config() -> CrossbarConfig {
        CrossbarConfig {
            rows: 64,
            cols: 64,
            read_noise: 0.0,
            adc_bits: 0,
            dac_bits: 8,
            r_wire: 0.01,
            ..CrossbarConfig::default()
        }
    }

    #[test]
    fn tile_and_device_counts_match_papers_scale() {
        let mut rng = Rng64::new(1);
        // The paper's model: >65k weights -> 130k devices in 36 64x64
        // arrays. Build a controller at that scale (96-d embedding).
        let net = SmallCnn::new(28, 96, 64, &mut rng);
        assert!(net.weight_count() > 65_000);
        let xcnn = CrossbarCnn::program(&net, &clean_config(), Fidelity::Ideal, &mut rng);
        // conv1: 10x8 -> 1; conv2: 73x16 -> 2; fc: 785x96 -> 13x2 = 26.
        assert!(
            (20..=48).contains(&xcnn.tile_count()),
            "{} tiles",
            xcnn.tile_count()
        );
        assert!(xcnn.device_count() >= 2 * net.weight_count());
    }

    #[test]
    fn ideal_crossbar_embedding_matches_software() {
        let (net, data) = trained();
        let mut rng = Rng64::new(2);
        let xcnn = CrossbarCnn::program(&net, &clean_config(), Fidelity::Ideal, &mut rng);
        for img in data.eval[0].iter().take(3) {
            let sw = net.embed(img);
            let hw = xcnn.embed(img);
            let cs = cosine_similarity(&sw, &hw);
            assert!(cs > 0.999, "cosine {cs}");
        }
    }

    #[test]
    fn nonideal_crossbar_embedding_stays_close() {
        let (net, data) = trained();
        let mut rng = Rng64::new(3);
        let cfg = CrossbarConfig {
            rows: 64,
            cols: 64,
            dac_bits: 8,
            adc_bits: 8,
            read_noise: 0.005,
            r_wire: 0.5,
            ..CrossbarConfig::default()
        };
        let xcnn = CrossbarCnn::program(&net, &cfg, Fidelity::Fast, &mut rng);
        let mut sims = Vec::new();
        for img in data.eval[0].iter().take(4) {
            sims.push(cosine_similarity(&net.embed(img), &xcnn.embed(img)));
        }
        let mean = xlda_num::stats::mean(&sims);
        assert!(mean > 0.85, "mean cosine {mean} ({sims:?})");
    }

    #[test]
    fn crossbar_embedding_preserves_class_structure() {
        // The property few-shot learning actually needs: same-class
        // embeddings stay closer than cross-class ones through the
        // analog path.
        let (net, data) = trained();
        let mut rng = Rng64::new(4);
        let xcnn = CrossbarCnn::program(&net, &clean_config(), Fidelity::Fast, &mut rng);
        let a0 = xcnn.embed(&data.eval[0][0]);
        let a1 = xcnn.embed(&data.eval[0][1]);
        let b0 = xcnn.embed(&data.eval[1][0]);
        let within = cosine_similarity(&a0, &a1);
        let across = cosine_similarity(&a0, &b0);
        assert!(within > across, "within {within} across {across}");
    }
}
