//! Locality-sensitive hashing: software reference and RRAM variants.
//!
//! LSH turns a feature vector into a short binary signature such that
//! similar vectors share most signature bits, letting the associative
//! memory compare Hamming distances instead of cosine distances. This
//! module provides:
//!
//! - [`SoftwareLsh`] — exact sign-random-projection (the Fig. 4D
//!   "software LSH" reference);
//! - re-exported RRAM in-memory LSH/TLSH from
//!   [`xlda_crossbar::stochastic`];
//! - [`correlation_with_cosine`] — the Fig. 4D statistic: Pearson
//!   correlation between hashed Hamming distance and true cosine
//!   distance over a set of vector pairs.

pub use xlda_crossbar::stochastic::{ternary_hamming, StochasticProjection};
use xlda_num::matrix::{cosine_similarity, Matrix};
use xlda_num::rng::Rng64;
use xlda_num::stats::pearson;

/// Exact software sign-random-projection LSH.
#[derive(Debug, Clone)]
pub struct SoftwareLsh {
    proj: Matrix,
}

impl SoftwareLsh {
    /// Builds a Gaussian random projection from `dim` inputs to `bits`
    /// signature bits.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(dim: usize, bits: usize, rng: &mut Rng64) -> Self {
        assert!(dim > 0 && bits > 0, "dimensions must be positive");
        Self {
            proj: Matrix::random_normal(bits, dim, 0.0, 1.0, rng),
        }
    }

    /// Signature length in bits.
    pub fn bits(&self) -> usize {
        self.proj.rows()
    }

    /// Hashes a vector to a ±1 signature.
    ///
    /// # Panics
    ///
    /// Panics on input dimension mismatch.
    pub fn hash(&self, x: &[f64]) -> Vec<i8> {
        self.proj
            .matvec(x)
            .iter()
            .map(|&v| if v >= 0.0 { 1 } else { -1 })
            .collect()
    }
}

/// Any function from feature vectors to ternary signatures.
///
/// Unifies the software and RRAM hashers for episode evaluation.
/// `Send + Sync` so episode evaluation can fan out across threads.
pub trait Hasher: Send + Sync {
    /// Signature length.
    fn bits(&self) -> usize;
    /// Hashes a feature vector (entries of the result in {-1, 0, +1}).
    fn signature(&self, x: &[f64]) -> Vec<i8>;
}

impl Hasher for SoftwareLsh {
    fn bits(&self) -> usize {
        self.bits()
    }

    fn signature(&self, x: &[f64]) -> Vec<i8> {
        self.hash(x)
    }
}

/// RRAM crossbar LSH in binary mode.
#[derive(Debug, Clone)]
pub struct RramLsh {
    /// The underlying stochastic projection crossbar.
    pub projection: StochasticProjection,
}

impl Hasher for RramLsh {
    fn bits(&self) -> usize {
        self.projection.bits()
    }

    fn signature(&self, x: &[f64]) -> Vec<i8> {
        // Shift features to non-negative (post-ReLU embeddings mostly
        // are; normalization keeps this stable).
        let shifted: Vec<f64> = x.iter().map(|&v| v.max(0.0)).collect();
        self.projection.hash(&shifted)
    }
}

/// RRAM crossbar LSH in ternary (don't-care) mode.
#[derive(Debug, Clone)]
pub struct RramTlsh {
    /// The underlying stochastic projection crossbar.
    pub projection: StochasticProjection,
    /// Don't-care threshold current (A).
    pub threshold: f64,
}

impl Hasher for RramTlsh {
    fn bits(&self) -> usize {
        self.projection.bits()
    }

    fn signature(&self, x: &[f64]) -> Vec<i8> {
        let shifted: Vec<f64> = x.iter().map(|&v| v.max(0.0)).collect();
        self.projection.ternary_hash(&shifted, self.threshold)
    }
}

/// Pearson correlation between hashed (ternary) Hamming distance and true
/// cosine *distance* across `pairs` random vector pairs (Fig. 4D).
///
/// Higher is better: 1.0 means the hash preserves the similarity
/// ordering perfectly.
pub fn correlation_with_cosine<H: Hasher>(
    hasher: &H,
    vectors: &[Vec<f64>],
    pairs: usize,
    rng: &mut Rng64,
) -> f64 {
    correlation_with_cosine_drifted(hasher, hasher, vectors, pairs, rng)
}

/// [`correlation_with_cosine`] with distinct enrollment-time and
/// query-time hashers: the first vector of each pair is hashed with
/// `enroll`, the second with `query` — modeling stored memories compared
/// against queries hashed after the devices have relaxed (the condition
/// under which the ternary scheme pays off, Fig. 4C/4D).
pub fn correlation_with_cosine_drifted<HA: Hasher + ?Sized, HB: Hasher + ?Sized>(
    enroll: &HA,
    query: &HB,
    vectors: &[Vec<f64>],
    pairs: usize,
    rng: &mut Rng64,
) -> f64 {
    assert!(vectors.len() >= 2, "need at least two vectors");
    let sigs_enroll: Vec<Vec<i8>> = vectors.iter().map(|v| enroll.signature(v)).collect();
    let sigs_query: Vec<Vec<i8>> = vectors.iter().map(|v| query.signature(v)).collect();
    let mut cos_d = Vec::with_capacity(pairs);
    let mut ham_d = Vec::with_capacity(pairs);
    for _ in 0..pairs {
        let i = rng.index(vectors.len());
        let mut j = rng.index(vectors.len());
        while j == i {
            j = rng.index(vectors.len());
        }
        cos_d.push(1.0 - cosine_similarity(&vectors[i], &vectors[j]));
        ham_d.push(ternary_hamming(&sigs_enroll[i], &sigs_query[j]) as f64);
    }
    pearson(&cos_d, &ham_d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlda_device::rram::Rram;

    fn cluster_vectors(rng: &mut Rng64) -> Vec<Vec<f64>> {
        // Two clusters of ReLU-like (non-negative) vectors plus spread.
        let mut out = Vec::new();
        for c in 0..4 {
            let center: Vec<f64> = (0..64).map(|_| rng.uniform()).collect();
            for _ in 0..8 {
                out.push(
                    center
                        .iter()
                        .map(|&v| (v + rng.normal(0.0, 0.15 + 0.05 * c as f64)).max(0.0))
                        .collect(),
                );
            }
        }
        out
    }

    #[test]
    fn software_lsh_preserves_similarity_ordering() {
        let mut rng = Rng64::new(1);
        let lsh = SoftwareLsh::new(64, 256, &mut rng);
        let vecs = cluster_vectors(&mut rng);
        let r = correlation_with_cosine(&lsh, &vecs, 300, &mut rng);
        assert!(r > 0.8, "correlation {r}");
    }

    #[test]
    fn correlation_ordering_matches_fig4d() {
        // software LSH >= RRAM TLSH >= RRAM LSH, all positive.
        let mut rng = Rng64::new(2);
        let vecs = cluster_vectors(&mut rng);
        let bits = 256;

        let sw = SoftwareLsh::new(64, bits, &mut rng);
        let r_sw = correlation_with_cosine(&sw, &vecs, 400, &mut rng);

        let dev = Rram::taox();
        let mut proj = StochasticProjection::new(64, bits, &dev, &mut Rng64::new(3));
        proj.relax(2.0, &mut Rng64::new(4)); // field conditions
        let thr = proj.calibrate_threshold(&vecs[..4], 0.3);
        let rram = RramLsh {
            projection: proj.clone(),
        };
        let tlsh = RramTlsh {
            projection: proj,
            threshold: thr,
        };
        let r_rram = correlation_with_cosine(&rram, &vecs, 400, &mut Rng64::new(5));
        let r_tlsh = correlation_with_cosine(&tlsh, &vecs, 400, &mut Rng64::new(5));

        assert!(r_rram > 0.3, "rram correlation {r_rram}");
        assert!(r_tlsh >= r_rram - 0.02, "tlsh {r_tlsh} rram {r_rram}");
        assert!(r_sw >= r_tlsh - 0.05, "sw {r_sw} tlsh {r_tlsh}");
    }

    #[test]
    fn longer_signatures_correlate_better() {
        let mut rng = Rng64::new(6);
        let vecs = cluster_vectors(&mut rng);
        let short = SoftwareLsh::new(64, 16, &mut Rng64::new(7));
        let long = SoftwareLsh::new(64, 512, &mut Rng64::new(7));
        let r_short = correlation_with_cosine(&short, &vecs, 400, &mut Rng64::new(8));
        let r_long = correlation_with_cosine(&long, &vecs, 400, &mut Rng64::new(8));
        assert!(r_long > r_short, "short {r_short} long {r_long}");
    }

    #[test]
    fn hasher_trait_objects_work() {
        let mut rng = Rng64::new(9);
        let lsh = SoftwareLsh::new(8, 16, &mut rng);
        let h: &dyn Hasher = &lsh;
        assert_eq!(h.bits(), 16);
        assert_eq!(h.signature(&[0.5; 8]).len(), 16);
    }
}
