//! Associative memories for the MANN.
//!
//! The AM stores one signature per support example and answers queries
//! with the label of the nearest entry. Two backends:
//!
//! - [`SoftwareAm`] — exact nearest-cosine over raw feature vectors (the
//!   paper's software skyline) or exact ternary-Hamming over signatures;
//! - [`RramTcam`] — signatures stored in RRAM crossbar TCAM cells with a
//!   variation-derived bit-flip channel. The conductance mapping choice
//!   (naive vs. variation-aware, Sec. IV) sets the flip probability.

use xlda_crossbar::stochastic::ternary_hamming;
use xlda_device::rram::Rram;
use xlda_num::matrix::cosine_similarity;
use xlda_num::rng::Rng64;

/// Exact software associative memory over feature vectors.
#[derive(Debug, Clone, Default)]
pub struct SoftwareAm {
    entries: Vec<(Vec<f64>, usize)>,
}

impl SoftwareAm {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes a feature vector with its label.
    pub fn write(&mut self, fv: Vec<f64>, label: usize) {
        self.entries.push((fv, label));
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the memory is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the label of the entry most cosine-similar to the query.
    ///
    /// # Panics
    ///
    /// Panics if the memory is empty.
    pub fn query_cosine(&self, fv: &[f64]) -> usize {
        assert!(!self.entries.is_empty(), "empty associative memory");
        self.entries
            .iter()
            .map(|(e, l)| (cosine_similarity(fv, e), *l))
            .max_by(|a, b| a.0.total_cmp(&b.0))
            .map(|(_, l)| l)
            .expect("non-empty")
    }
}

/// A signature-based associative memory storing ternary signatures.
#[derive(Debug, Clone, Default)]
pub struct SignatureAm {
    entries: Vec<(Vec<i8>, usize)>,
}

impl SignatureAm {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes a signature with its label.
    pub fn write(&mut self, sig: Vec<i8>, label: usize) {
        self.entries.push((sig, label));
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the memory is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Label of the entry with minimal ternary Hamming distance.
    ///
    /// # Panics
    ///
    /// Panics if the memory is empty.
    pub fn query(&self, sig: &[i8]) -> usize {
        assert!(!self.entries.is_empty(), "empty associative memory");
        self.entries
            .iter()
            .map(|(e, l)| (ternary_hamming(sig, e), *l))
            .min_by_key(|(d, _)| *d)
            .map(|(_, l)| l)
            .expect("non-empty")
    }
}

/// Conductance mapping for TCAM storage (Sec. IV co-optimization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TcamMapping {
    /// Levels spread across the full window, crossing the high-variation
    /// region.
    Naive,
    /// Levels mapped below the high-variation region, away from high
    /// currents (less IR drop, less variation).
    VariationAware,
}

/// RRAM crossbar TCAM with a device-derived storage error channel.
#[derive(Debug, Clone)]
pub struct RramTcam {
    entries: Vec<(Vec<i8>, usize)>,
    /// Per-bit storage/readout flip probability, derived from the
    /// conductance mapping and programming variation.
    pub flip_probability: f64,
    rng: Rng64,
}

impl RramTcam {
    /// Creates a TCAM using the given device and conductance mapping.
    ///
    /// The per-bit error combines two device effects from Sec. IV:
    /// programming-variation overlap between the two states, and IR-drop
    /// disturbance, which grows with the high-state conductance (higher
    /// currents, larger wire drops). The naive full-window mapping
    /// maximizes separation but pays the IR-drop penalty; the
    /// variation-aware mapping keeps conductances low.
    pub fn new(device: &Rram, mapping: TcamMapping, seed: u64) -> Self {
        let cell = match mapping {
            TcamMapping::Naive => device.mlc(1),
            TcamMapping::VariationAware => device.mlc_avoiding_variation(1),
        };
        let g_high = cell.levels()[cell.level_count() - 1];
        let ir_drop_error = 0.02 * g_high / device.g_max;
        Self {
            entries: Vec::new(),
            flip_probability: (cell.max_error_rate() + ir_drop_error).min(0.5),
            rng: Rng64::new(seed),
        }
    }

    /// Writes a signature; each stored bit may flip with the mapping's
    /// error probability ("don't care" bits are unaffected).
    pub fn write(&mut self, sig: &[i8], label: usize) {
        let stored: Vec<i8> = sig
            .iter()
            .map(|&b| {
                if b != 0 && self.rng.chance(self.flip_probability) {
                    -b
                } else {
                    b
                }
            })
            .collect();
        self.entries.push((stored, label));
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the memory is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Label of the minimum-Hamming entry; the query side is exact (the
    /// searchlines are digital).
    ///
    /// # Panics
    ///
    /// Panics if the memory is empty.
    pub fn query(&self, sig: &[i8]) -> usize {
        assert!(!self.entries.is_empty(), "empty associative memory");
        self.entries
            .iter()
            .map(|(e, l)| (ternary_hamming(sig, e), *l))
            .min_by_key(|(d, _)| *d)
            .map(|(_, l)| l)
            .expect("non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn software_am_finds_nearest() {
        let mut am = SoftwareAm::new();
        am.write(vec![1.0, 0.0], 0);
        am.write(vec![0.0, 1.0], 1);
        assert_eq!(am.query_cosine(&[0.9, 0.1]), 0);
        assert_eq!(am.query_cosine(&[0.1, 0.9]), 1);
        assert_eq!(am.len(), 2);
    }

    #[test]
    fn signature_am_minimizes_hamming() {
        let mut am = SignatureAm::new();
        am.write(vec![1, 1, 1, 1], 7);
        am.write(vec![-1, -1, -1, -1], 9);
        assert_eq!(am.query(&[1, 1, 1, -1]), 7);
        assert_eq!(am.query(&[-1, -1, 1, -1]), 9);
    }

    #[test]
    fn dont_care_counts_as_match() {
        let mut am = SignatureAm::new();
        am.write(vec![1, 0, 0, 0], 1); // mostly don't-care entry
        am.write(vec![-1, -1, -1, -1], 2);
        // Query matching entry 2 in three positions but entry 1's X's
        // give distance 0 everywhere except bit 0.
        assert_eq!(am.query(&[1, -1, -1, -1]), 1);
    }

    #[test]
    fn variation_aware_mapping_flips_less() {
        let dev = Rram::taox();
        let naive = RramTcam::new(&dev, TcamMapping::Naive, 1);
        let tuned = RramTcam::new(&dev, TcamMapping::VariationAware, 1);
        assert!(tuned.flip_probability <= naive.flip_probability);
    }

    #[test]
    fn tcam_queries_despite_flips() {
        let dev = Rram::taox();
        let mut tcam = RramTcam::new(&dev, TcamMapping::VariationAware, 2);
        let a = vec![1i8; 128];
        let b = vec![-1i8; 128];
        tcam.write(&a, 0);
        tcam.write(&b, 1);
        assert_eq!(tcam.query(&a), 0);
        assert_eq!(tcam.query(&b), 1);
    }

    #[test]
    #[should_panic(expected = "empty associative memory")]
    fn empty_query_panics() {
        SignatureAm::new().query(&[1]);
    }
}
