//! Memory-augmented neural network few-shot learning case study
//! (paper Sec. IV, Fig. 4).
//!
//! A MANN pairs a learned feature extractor (a CNN) with an explicit
//! associative memory: new classes are learned by *writing* support
//! examples into the memory and classified by nearest-neighbor search.
//! The paper's study maps every kernel — CNN, hashing, associative
//! search — onto RRAM crossbars. This crate implements:
//!
//! - [`nn`] — a from-scratch CNN (conv/pool/fc, softmax SGD training)
//!   used as the MANN controller;
//! - [`controller`] — background-split training and L2-normalized
//!   feature extraction;
//! - [`lsh`] — software locality-sensitive hashing plus the RRAM
//!   stochastic-crossbar LSH/TLSH, and the cosine-vs-Hamming correlation
//!   analysis of Fig. 4D;
//! - [`am`] — Hamming associative memories: exact software, and an RRAM
//!   TCAM model with variation-aware conductance mapping (bit-flip
//!   channel derived from the device model);
//! - [`episode`] — end-to-end N-way K-shot evaluation across the
//!   software/hardware variants, regenerating the accuracy-vs-hash-length
//!   trade of Fig. 4E;
//! - [`xbar_cnn`] — the CNN controller itself executed on tiled 64×64
//!   differential crossbars (the paper's ">65,000 weights via 130,000
//!   RRAM devices in 36 arrays" mapping).

pub mod am;
pub mod controller;
pub mod episode;
pub mod lsh;
pub mod nn;
pub mod xbar_cnn;
