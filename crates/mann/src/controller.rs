//! Controller training on the background class split.
//!
//! Following the standard Omniglot protocol (and the paper's MANN), the
//! CNN is trained as a plain classifier on *background* classes; its
//! penultimate-layer embedding then generalizes to unseen classes, which
//! are learned by writing embeddings into the associative memory.

use crate::nn::SmallCnn;
use xlda_datagen::fewshot::{ImageSet, IMAGE_SIDE};
use xlda_num::rng::Rng64;

/// Training hyperparameters for the controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Embedding dimensionality.
    pub emb_dim: usize,
    /// SGD epochs over the background split.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// Seed for initialization and shuffling.
    pub seed: u64,
}

impl Default for TrainConfig {
    /// 64-d embeddings, 5 epochs, lr 0.01.
    fn default() -> Self {
        Self {
            emb_dim: 64,
            epochs: 5,
            lr: 0.01,
            seed: 0xc0_47,
        }
    }
}

/// Trains the controller CNN on the background split and reports the
/// final background training accuracy.
pub fn train_controller(data: &ImageSet, config: &TrainConfig) -> (SmallCnn, f64) {
    let classes = data.background.len();
    let mut rng = Rng64::new(config.seed);
    let mut net = SmallCnn::new(IMAGE_SIDE, config.emb_dim, classes, &mut rng);

    // Flatten (image, label) pairs and shuffle each epoch.
    let mut samples: Vec<(usize, usize)> = Vec::new();
    for (c, imgs) in data.background.iter().enumerate() {
        for s in 0..imgs.len() {
            samples.push((c, s));
        }
    }
    for epoch in 0..config.epochs {
        rng.shuffle(&mut samples);
        // Simple schedule: halve the rate in the final epoch.
        let lr = if epoch + 1 == config.epochs {
            config.lr / 2.0
        } else {
            config.lr
        };
        for &(c, s) in &samples {
            net.train_step(&data.background[c][s], c, lr);
        }
    }

    let mut correct = 0usize;
    for &(c, s) in &samples {
        let logits = net.logits(&data.background[c][s]);
        let pred = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        if pred == c {
            correct += 1;
        }
    }
    let acc = correct as f64 / samples.len() as f64;
    (net, acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xlda_datagen::fewshot::FewShotSpec;
    use xlda_num::matrix::cosine_similarity;

    fn tiny_set() -> ImageSet {
        FewShotSpec {
            background_classes: 8,
            eval_classes: 6,
            samples_per_class: 8,
            ..FewShotSpec::default()
        }
        .generate()
    }

    #[test]
    fn controller_learns_background_classes() {
        let data = tiny_set();
        let (_, acc) = train_controller(
            &data,
            &TrainConfig {
                epochs: 4,
                ..TrainConfig::default()
            },
        );
        assert!(acc > 0.8, "background accuracy {acc}");
    }

    #[test]
    fn embeddings_cluster_unseen_classes() {
        // The embedding must transfer: same-class eval images should be
        // closer in cosine than cross-class ones.
        let data = tiny_set();
        let (net, _) = train_controller(
            &data,
            &TrainConfig {
                epochs: 4,
                ..TrainConfig::default()
            },
        );
        let e_a0 = net.embed(&data.eval[0][0]);
        let e_a1 = net.embed(&data.eval[0][1]);
        let e_b0 = net.embed(&data.eval[1][0]);
        let within = cosine_similarity(&e_a0, &e_a1);
        let across = cosine_similarity(&e_a0, &e_b0);
        assert!(within > across, "within {within} across {across}");
    }

    #[test]
    fn training_is_deterministic() {
        let data = tiny_set();
        let cfg = TrainConfig {
            epochs: 1,
            ..TrainConfig::default()
        };
        let (net_a, acc_a) = train_controller(&data, &cfg);
        let (net_b, acc_b) = train_controller(&data, &cfg);
        assert_eq!(acc_a, acc_b);
        assert_eq!(net_a.embed(&data.eval[0][0]), net_b.embed(&data.eval[0][0]));
    }
}
