//! End-to-end N-way K-shot episode evaluation (Fig. 4E).
//!
//! Each episode samples unseen classes, writes hashed support embeddings
//! into the associative memory, and classifies query embeddings by
//! nearest signature. Variants differ in where hashing and search run:
//! exact software, software LSH, RRAM crossbar LSH, or RRAM crossbar
//! ternary LSH with a variation-aware TCAM.

use crate::am::{RramTcam, SignatureAm, SoftwareAm, TcamMapping};
use crate::lsh::{Hasher, RramLsh, RramTlsh, SoftwareLsh};
use crate::nn::SmallCnn;
use crate::xbar_cnn::CrossbarCnn;
use xlda_crossbar::stochastic::StochasticProjection;
use xlda_crossbar::{CrossbarConfig, Fidelity};
use xlda_datagen::fewshot::ImageSet;
use xlda_device::rram::Rram;
use xlda_num::rng::Rng64;

/// Enrollment-time and query-time hasher pair (they differ when device
/// state drifts between enrollment and query).
type HasherPair = (Box<dyn Hasher>, Box<dyn Hasher>);

/// Which hardware/software stack executes hashing and search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MannVariant {
    /// Exact cosine over raw embeddings (software skyline).
    SoftwareCosine,
    /// Software sign-random-projection LSH + exact Hamming AM.
    SoftwareLsh {
        /// Signature length.
        bits: usize,
    },
    /// RRAM stochastic-crossbar LSH + RRAM TCAM.
    RramLsh {
        /// Signature length.
        bits: usize,
        /// Conductance relaxation (decades of time) elapsing between
        /// support enrollment and query hashing — the source of the
        /// unstable bits in Fig. 4C.
        relax_decades: f64,
    },
    /// RRAM ternary LSH (don't-care states) + RRAM TCAM.
    RramTlsh {
        /// Signature length.
        bits: usize,
        /// Conductance relaxation (decades of time) elapsing between
        /// support enrollment and query hashing.
        relax_decades: f64,
        /// Don't-care threshold as a fraction of mean |projection|.
        threshold_frac: f64,
    },
    /// The complete paper pipeline: CNN on tiled crossbars, ternary LSH
    /// on a stochastic crossbar, search in an RRAM TCAM — every compute
    /// kernel in-memory (Sec. IV: "all essential compute tasks ...
    /// realized via RRAM crossbars").
    RramEndToEnd {
        /// Signature length.
        bits: usize,
        /// Conductance relaxation between enrollment and query.
        relax_decades: f64,
        /// Don't-care threshold as a fraction of mean |projection|.
        threshold_frac: f64,
    },
}

/// Episode evaluation settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpisodeConfig {
    /// Classes per episode.
    pub n_way: usize,
    /// Support examples per class.
    pub k_shot: usize,
    /// Query examples per class.
    pub queries_per_way: usize,
    /// Number of episodes to average.
    pub episodes: usize,
    /// Seed for episode sampling and hardware instances.
    pub seed: u64,
}

impl Default for EpisodeConfig {
    /// 5-way 1-shot, 5 queries per class, 20 episodes.
    fn default() -> Self {
        Self {
            n_way: 5,
            k_shot: 1,
            queries_per_way: 5,
            episodes: 20,
            seed: 0xe9,
        }
    }
}

/// Mean few-shot accuracy of a MANN variant over sampled episodes.
pub fn evaluate(
    net: &SmallCnn,
    data: &ImageSet,
    variant: MannVariant,
    config: &EpisodeConfig,
) -> f64 {
    let mut rng = Rng64::new(config.seed);
    let emb_dim = net.emb_dim();
    let device = Rram::taox();

    // Hardware hashers are fabricated once and reused across episodes.
    // For RRAM variants the conductances *relax* between support
    // enrollment and query time, so the enroll-time and query-time
    // hashers see different device states (the Fig. 4C instability).
    let mut hw_rng = rng.fork();
    // The embedding path: software CNN, or the CNN mapped onto tiled
    // crossbars for the end-to-end variant.
    let xcnn: Option<CrossbarCnn> = match variant {
        MannVariant::RramEndToEnd { .. } => {
            let cfg = CrossbarConfig {
                rows: 64,
                cols: 64,
                dac_bits: 8,
                adc_bits: 8,
                read_noise: 0.003,
                r_wire: 0.2,
                ..CrossbarConfig::default()
            };
            Some(CrossbarCnn::program(net, &cfg, Fidelity::Fast, &mut hw_rng))
        }
        _ => None,
    };
    let embed = |img: &[f64]| -> Vec<f64> {
        match &xcnn {
            Some(x) => x.embed(img),
            None => net.embed(img),
        }
    };
    let hashers: Option<HasherPair> = match variant {
        MannVariant::SoftwareCosine => None,
        MannVariant::SoftwareLsh { bits } => {
            let h = SoftwareLsh::new(emb_dim, bits, &mut hw_rng);
            Some((Box::new(h.clone()), Box::new(h)))
        }
        MannVariant::RramLsh {
            bits,
            relax_decades,
        } => {
            let proj = StochasticProjection::new(emb_dim, bits, &device, &mut hw_rng);
            let mut drifted = proj.clone();
            drifted.relax(relax_decades, &mut hw_rng);
            Some((
                Box::new(RramLsh { projection: proj }),
                Box::new(RramLsh {
                    projection: drifted,
                }),
            ))
        }
        MannVariant::RramTlsh {
            bits,
            relax_decades,
            threshold_frac,
        }
        | MannVariant::RramEndToEnd {
            bits,
            relax_decades,
            threshold_frac,
        } => {
            let proj = StochasticProjection::new(emb_dim, bits, &device, &mut hw_rng);
            let mut drifted = proj.clone();
            drifted.relax(relax_decades, &mut hw_rng);
            // Calibrate the don't-care threshold on real embeddings from
            // the background split (a held-out calibration set).
            let probes: Vec<Vec<f64>> = data
                .background
                .iter()
                .take(4)
                .flat_map(|class| class.iter().take(2))
                .map(|img| embed(img).iter().map(|&v| v.max(0.0)).collect())
                .collect();
            let threshold = proj.calibrate_threshold(&probes, threshold_frac);
            // Ternary signatures are assigned at *enrollment*: marginal
            // (unstable) bits become don't-cares in the stored word.
            // Queries use plain binary hashing on the drifted devices.
            Some((
                Box::new(RramTlsh {
                    projection: proj,
                    threshold,
                }),
                Box::new(RramLsh {
                    projection: drifted,
                }),
            ))
        }
    };
    let uses_rram_tcam = matches!(
        variant,
        MannVariant::RramLsh { .. }
            | MannVariant::RramTlsh { .. }
            | MannVariant::RramEndToEnd { .. }
    );

    // Episodes are sampled sequentially (one RNG stream) but evaluated in
    // parallel: each episode's hardware instances derive from its own
    // seed, so the result is independent of thread scheduling.
    let episodes: Vec<_> = (0..config.episodes)
        .map(|ep| {
            (
                ep,
                data.sample_episode(
                    config.n_way,
                    config.k_shot,
                    config.queries_per_way,
                    &mut rng,
                ),
            )
        })
        .collect();
    let results: Vec<(usize, usize)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = episodes
            .iter()
            .map(|(ep, episode)| {
                let hashers = &hashers;
                let device = &device;
                let embed = &embed;
                scope.spawn(move |_| {
                    run_episode(
                        embed,
                        episode,
                        hashers,
                        uses_rram_tcam,
                        device,
                        config.seed ^ (*ep as u64),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("episode worker panicked"))
            .collect()
    })
    .expect("episode scope panicked");
    let total_correct: usize = results.iter().map(|(c, _)| c).sum();
    let total_queries: usize = results.iter().map(|(_, q)| q).sum();
    total_correct as f64 / total_queries.max(1) as f64
}

/// Evaluates one episode, returning (correct, queries).
fn run_episode(
    embed: &(dyn Fn(&[f64]) -> Vec<f64> + Sync),
    episode: &xlda_datagen::Episode,
    hashers: &Option<HasherPair>,
    uses_rram_tcam: bool,
    device: &Rram,
    tcam_seed: u64,
) -> (usize, usize) {
    let mut correct = 0usize;
    let mut queries = 0usize;
    match hashers {
        None => {
            let mut am = SoftwareAm::new();
            for (img, label) in &episode.support {
                am.write(embed(img), *label);
            }
            for (img, label) in &episode.query {
                if am.query_cosine(&embed(img)) == *label {
                    correct += 1;
                }
                queries += 1;
            }
        }
        Some((enroll, query_time)) => {
            if uses_rram_tcam {
                let mut am = RramTcam::new(device, TcamMapping::VariationAware, tcam_seed);
                for (img, label) in &episode.support {
                    am.write(&enroll.signature(&embed(img)), *label);
                }
                for (img, label) in &episode.query {
                    if am.query(&query_time.signature(&embed(img))) == *label {
                        correct += 1;
                    }
                    queries += 1;
                }
            } else {
                let mut am = SignatureAm::new();
                for (img, label) in &episode.support {
                    am.write(enroll.signature(&embed(img)), *label);
                }
                for (img, label) in &episode.query {
                    if am.query(&query_time.signature(&embed(img))) == *label {
                        correct += 1;
                    }
                    queries += 1;
                }
            }
        }
    }
    (correct, queries)
}

/// Accuracy as a function of hash signature length for a fixed variant
/// constructor — the x-axis sweep of Fig. 4E.
pub fn accuracy_vs_bits<F>(
    net: &SmallCnn,
    data: &ImageSet,
    bit_lengths: &[usize],
    config: &EpisodeConfig,
    make_variant: F,
) -> Vec<(usize, f64)>
where
    F: Fn(usize) -> MannVariant,
{
    bit_lengths
        .iter()
        .map(|&bits| (bits, evaluate(net, data, make_variant(bits), config)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{train_controller, TrainConfig};
    use xlda_datagen::fewshot::FewShotSpec;

    fn trained() -> (SmallCnn, ImageSet) {
        let data = FewShotSpec {
            background_classes: 8,
            eval_classes: 10,
            samples_per_class: 8,
            ..FewShotSpec::default()
        }
        .generate();
        let (net, _) = train_controller(
            &data,
            &TrainConfig {
                epochs: 3,
                ..TrainConfig::default()
            },
        );
        (net, data)
    }

    fn quick() -> EpisodeConfig {
        EpisodeConfig {
            episodes: 10,
            ..EpisodeConfig::default()
        }
    }

    #[test]
    fn software_cosine_beats_chance_decisively() {
        let (net, data) = trained();
        let acc = evaluate(&net, &data, MannVariant::SoftwareCosine, &quick());
        assert!(acc > 0.6, "accuracy {acc} (chance 0.2)");
    }

    #[test]
    fn longer_hashes_approach_cosine_accuracy() {
        // Fig. 4E: hashing loses accuracy at short signatures and
        // recovers it as the signature grows.
        let (net, data) = trained();
        let cfg = quick();
        let cosine = evaluate(&net, &data, MannVariant::SoftwareCosine, &cfg);
        let sweep = accuracy_vs_bits(&net, &data, &[16, 256], &cfg, |bits| {
            MannVariant::SoftwareLsh { bits }
        });
        let short = sweep[0].1;
        let long = sweep[1].1;
        assert!(long >= short, "short {short} long {long}");
        assert!(long >= cosine - 0.08, "long {long} cosine {cosine}");
    }

    #[test]
    fn rram_variants_work_and_tlsh_helps() {
        // Stress the unstable-bit mechanism: short signatures, long
        // drift, harder episodes (Fig. 4C conditions).
        let (net, data) = trained();
        let cfg = EpisodeConfig {
            n_way: 8,
            episodes: 15,
            ..EpisodeConfig::default()
        };
        let lsh = evaluate(
            &net,
            &data,
            MannVariant::RramLsh {
                bits: 24,
                relax_decades: 8.0,
            },
            &cfg,
        );
        let tlsh = evaluate(
            &net,
            &data,
            MannVariant::RramTlsh {
                bits: 24,
                relax_decades: 8.0,
                threshold_frac: 0.3,
            },
            &cfg,
        );
        assert!(lsh > 0.2, "rram lsh accuracy {lsh}");
        assert!(tlsh >= lsh, "tlsh {tlsh} lsh {lsh}");
    }

    #[test]
    fn evaluation_is_deterministic() {
        let (net, data) = trained();
        let cfg = quick();
        let a = evaluate(&net, &data, MannVariant::SoftwareLsh { bits: 64 }, &cfg);
        let b = evaluate(&net, &data, MannVariant::SoftwareLsh { bits: 64 }, &cfg);
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod end_to_end_tests {
    use super::*;
    use crate::controller::{train_controller, TrainConfig};
    use xlda_datagen::fewshot::FewShotSpec;

    #[test]
    fn all_rram_pipeline_beats_chance_decisively() {
        // The paper's headline: few-shot learning works end-to-end with
        // CNN, hashing, and search all on RRAM crossbars.
        let data = FewShotSpec {
            background_classes: 8,
            eval_classes: 10,
            samples_per_class: 8,
            ..FewShotSpec::default()
        }
        .generate();
        let (net, _) = train_controller(
            &data,
            &TrainConfig {
                epochs: 3,
                ..TrainConfig::default()
            },
        );
        let cfg = EpisodeConfig {
            episodes: 8,
            ..EpisodeConfig::default() // 5-way 1-shot
        };
        let software = evaluate(&net, &data, MannVariant::SoftwareCosine, &cfg);
        let rram = evaluate(
            &net,
            &data,
            MannVariant::RramEndToEnd {
                bits: 128,
                relax_decades: 3.0,
                threshold_frac: 0.2,
            },
            &cfg,
        );
        assert!(rram > 0.5, "all-RRAM accuracy {rram} (chance 0.2)");
        // The paper's own 128-bit experimental demonstration "suggests a
        // degradation in accuracy versus a software-based cosine
        // distance" — we accept the same gap and recover it with longer
        // hashes in Fig. 4E.
        assert!(
            rram >= software - 0.35,
            "rram {rram} vs software {software}"
        );
    }
}
