//! Property-based tests for the MANN stack.

use proptest::prelude::*;
use xlda_mann::am::{SignatureAm, SoftwareAm};
use xlda_mann::lsh::{Hasher, SoftwareLsh};
use xlda_mann::nn::{softmax, SmallCnn, Tensor};
use xlda_num::rng::Rng64;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn softmax_is_a_distribution(logits in prop::collection::vec(-50.0f64..50.0, 1..20)) {
        let p = softmax(&logits);
        prop_assert_eq!(p.len(), logits.len());
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn softmax_is_shift_invariant(logits in prop::collection::vec(-20.0f64..20.0, 1..10), shift in -20.0f64..20.0) {
        let shifted: Vec<f64> = logits.iter().map(|l| l + shift).collect();
        let a = softmax(&logits);
        let b = softmax(&shifted);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn embeddings_are_unit_norm_or_zero(seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let net = SmallCnn::new(8, 16, 3, &mut rng);
        let img: Vec<f64> = (0..64).map(|_| rng.uniform()).collect();
        let e = net.embed(&img);
        let n = xlda_num::matrix::norm(&e);
        prop_assert!(n.abs() < 1e-9 || (n - 1.0).abs() < 1e-9, "norm {n}");
    }

    #[test]
    fn train_step_returns_finite_loss(seed in any::<u64>(), label in 0usize..3) {
        let mut rng = Rng64::new(seed);
        let mut net = SmallCnn::new(8, 8, 3, &mut rng);
        let img: Vec<f64> = (0..64).map(|_| rng.uniform()).collect();
        let loss = net.train_step(&img, label, 0.01);
        prop_assert!(loss.is_finite() && loss >= 0.0);
    }

    #[test]
    fn tensor_roundtrip(c in 1usize..4, h in 1usize..8, w in 1usize..8, seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let data = rng.normal_vec(c * h * w, 0.0, 1.0);
        let t = Tensor::from_vec(c, h, w, data.clone());
        prop_assert_eq!(t.data, data);
        prop_assert_eq!((t.c, t.h, t.w), (c, h, w));
    }

    #[test]
    fn lsh_signature_is_bipolar_and_deterministic(
        dim in 2usize..32,
        bits in 1usize..64,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng64::new(seed);
        let lsh = SoftwareLsh::new(dim, bits, &mut rng);
        let x = rng.normal_vec(dim, 0.0, 1.0);
        let s = lsh.signature(&x);
        prop_assert_eq!(s.len(), bits);
        prop_assert!(s.iter().all(|&b| b == 1 || b == -1));
        prop_assert_eq!(s, lsh.signature(&x));
    }

    #[test]
    fn lsh_sign_flip_inverts_signature(dim in 2usize..32, bits in 1usize..32, seed in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let lsh = SoftwareLsh::new(dim, bits, &mut rng);
        let x = rng.normal_vec(dim, 0.0, 1.0);
        let neg: Vec<f64> = x.iter().map(|v| -v).collect();
        let a = lsh.signature(&x);
        let b = lsh.signature(&neg);
        // Sign projections flip with the input (ties break toward +1, so
        // allow equality only on exact-zero projections — measure zero).
        let flipped = a.iter().zip(&b).filter(|(x, y)| **x != **y).count();
        prop_assert!(flipped >= bits.saturating_sub(1), "{flipped}/{bits} flipped");
    }

    #[test]
    fn am_returns_stored_label_for_stored_key(
        entries in 1usize..10,
        dim in 2usize..16,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng64::new(seed);
        let mut sw = SoftwareAm::new();
        let mut sig = SignatureAm::new();
        let mut keys = Vec::new();
        for label in 0..entries {
            let fv = rng.normal_vec(dim, 0.0, 1.0);
            let s: Vec<i8> = fv.iter().map(|&v| if v >= 0.0 { 1 } else { -1 }).collect();
            sw.write(fv.clone(), label);
            sig.write(s.clone(), label);
            keys.push((fv, s, label));
        }
        // Exact stored keys must return a label whose entry is at
        // distance zero (ties possible between identical signatures).
        for (fv, s, label) in &keys {
            let got = sw.query_cosine(fv);
            prop_assert!(got < entries);
            let got_sig = sig.query(s);
            prop_assert!(got_sig < entries);
            let _ = label;
        }
    }
}
