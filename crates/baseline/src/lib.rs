//! Roofline-style analytical baseline platforms (CPU, GPU, TPU, hybrids).
//!
//! The paper's platform comparisons (Fig. 3E runtime breakdown, Fig. 3H
//! latency bars, the MANN latency advantage in Fig. 4E) need software
//! baselines. We model each platform with the classic roofline plus a
//! kernel-launch overhead:
//!
//! `t(kernel, batch) = launch + max(compute_time, memory_time)`
//!
//! which captures the two effects those figures hinge on: batch-1
//! inference is launch/transfer dominated (GPUs amortize poorly at the
//! edge), and search-style kernels are memory-bound (all stored data must
//! stream per query).
//!
//! Constants are calibrated to public datacenter-class specs; what
//! matters for the reproduction is *ranking and orders of magnitude*,
//! per DESIGN.md §2.
//!
//! # Examples
//!
//! ```
//! use xlda_baseline::{Kernel, Platform};
//!
//! let gpu = Platform::gpu();
//! let k = Kernel { flops_per_item: 2_000_000, bytes_per_item: 4_096, shared_bytes: 1_000_000 };
//! // Batched inference amortizes launch overhead and shared streaming.
//! let t1 = gpu.time(&k, 1);
//! let t1000 = gpu.time(&k, 1000) / 1000.0;
//! assert!(t1000 < t1);
//! ```

/// One compute kernel's resource demands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Kernel {
    /// Floating-point (or MAC) operations per batch item.
    pub flops_per_item: u64,
    /// Bytes streamed per batch item (activations, per-query data).
    pub bytes_per_item: u64,
    /// Bytes streamed once per batch regardless of size (weights, stored
    /// class HVs, learned memories).
    pub shared_bytes: u64,
}

impl Kernel {
    /// A dense `m x n` matrix-vector product.
    pub fn mvm(m: usize, n: usize) -> Self {
        Self {
            flops_per_item: 2 * (m as u64) * (n as u64),
            bytes_per_item: 4 * (m + n) as u64,
            shared_bytes: 4 * (m as u64) * (n as u64),
        }
    }

    /// An associative search of one query against `entries` stored
    /// vectors of `dim` elements (`bytes_per_elem` each).
    pub fn search(entries: usize, dim: usize, bytes_per_elem: usize) -> Self {
        let ops = 2 * (entries as u64) * (dim as u64);
        Self {
            flops_per_item: ops,
            bytes_per_item: (entries * dim * bytes_per_elem) as u64,
            shared_bytes: 0,
        }
    }
}

/// An analytical compute platform.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Display name.
    pub name: &'static str,
    /// Peak compute throughput (FLOP/s or MAC·2/s).
    pub peak_flops: f64,
    /// Sustained memory bandwidth (B/s).
    pub mem_bw: f64,
    /// Per-kernel launch/dispatch overhead (s).
    pub launch_overhead: f64,
    /// Active power while running (W).
    pub active_power: f64,
    /// Achievable fraction of peak on irregular kernels.
    pub efficiency: f64,
}

impl Platform {
    /// Datacenter GPU (V100-class: ~14 TFLOP/s fp32, 900 GB/s HBM).
    pub fn gpu() -> Self {
        Self {
            name: "GPU",
            peak_flops: 14e12,
            mem_bw: 900e9,
            launch_overhead: 10e-6,
            active_power: 300.0,
            efficiency: 0.6,
        }
    }

    /// TPU-style systolic accelerator (dense MVM only: high peak, lower
    /// flexibility).
    pub fn tpu() -> Self {
        Self {
            name: "TPU",
            peak_flops: 45e12,
            mem_bw: 600e9,
            launch_overhead: 5e-6,
            active_power: 200.0,
            efficiency: 0.8,
        }
    }

    /// Server CPU (few hundred GFLOP/s, DDR-class bandwidth).
    pub fn cpu() -> Self {
        Self {
            name: "CPU",
            peak_flops: 200e9,
            mem_bw: 50e9,
            launch_overhead: 0.2e-6,
            active_power: 120.0,
            efficiency: 0.5,
        }
    }

    /// Edge GPU (Jetson-class).
    pub fn edge_gpu() -> Self {
        Self {
            name: "edge-GPU",
            peak_flops: 1e12,
            mem_bw: 60e9,
            launch_overhead: 15e-6,
            active_power: 15.0,
            efficiency: 0.5,
        }
    }

    /// Wall-clock time (s) to run `kernel` over a batch of `batch` items.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn time(&self, kernel: &Kernel, batch: usize) -> f64 {
        assert!(batch > 0, "batch must be positive");
        let flops = (kernel.flops_per_item * batch as u64) as f64;
        let bytes = (kernel.shared_bytes + kernel.bytes_per_item * batch as u64) as f64;
        let t_compute = flops / (self.peak_flops * self.efficiency);
        let t_mem = bytes / self.mem_bw;
        self.launch_overhead + t_compute.max(t_mem)
    }

    /// Energy (J) for the same batched kernel.
    pub fn energy(&self, kernel: &Kernel, batch: usize) -> f64 {
        self.active_power * self.time(kernel, batch)
    }

    /// Time per item for a batched run.
    pub fn time_per_item(&self, kernel: &Kernel, batch: usize) -> f64 {
        self.time(kernel, batch) / batch as f64
    }
}

/// A two-stage heterogeneous pipeline: stage A on one platform, stage B
/// on another, with a fixed hand-off cost (the TPU-GPU hybrid of
/// Fig. 3H).
#[derive(Debug, Clone, PartialEq)]
pub struct HybridPipeline {
    /// Platform executing the first kernel.
    pub first: Platform,
    /// Platform executing the second kernel.
    pub second: Platform,
    /// Data hand-off latency between the stages (s).
    pub handoff: f64,
}

impl HybridPipeline {
    /// The TPU(encode) + GPU(search) hybrid used in Fig. 3H.
    pub fn tpu_gpu() -> Self {
        Self {
            first: Platform::tpu(),
            second: Platform::gpu(),
            handoff: 2e-6,
        }
    }

    /// Batched end-to-end time for the two-kernel pipeline (s).
    pub fn time(&self, first: &Kernel, second: &Kernel, batch: usize) -> f64 {
        self.first.time(first, batch) + self.handoff + self.second.time(second, batch)
    }

    /// Energy (J) for the two-kernel pipeline.
    pub fn energy(&self, first: &Kernel, second: &Kernel, batch: usize) -> f64 {
        self.first.energy(first, batch) + self.second.energy(second, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_amortizes_launch() {
        let gpu = Platform::gpu();
        let k = Kernel::mvm(4096, 617);
        let t1 = gpu.time_per_item(&k, 1);
        let t1000 = gpu.time_per_item(&k, 1000);
        assert!(t1 > 20.0 * t1000, "t1 {t1} t1000 {t1000}");
    }

    #[test]
    fn search_is_memory_bound_on_gpu() {
        let gpu = Platform::gpu();
        let k = Kernel::search(1_000_000, 512, 4);
        let bytes = (k.bytes_per_item) as f64;
        let t = gpu.time(&k, 1) - gpu.launch_overhead;
        // Time tracks the memory roofline, not the compute roofline.
        assert!((t - bytes / gpu.mem_bw).abs() / t < 0.05);
    }

    #[test]
    fn tpu_beats_gpu_on_dense_mvm() {
        let k = Kernel::mvm(8192, 8192);
        let tpu = Platform::tpu().time(&k, 64);
        let gpu = Platform::gpu().time(&k, 64);
        assert!(tpu < gpu);
    }

    #[test]
    fn cpu_slowest_for_heavy_compute() {
        let k = Kernel::mvm(4096, 4096);
        let cpu = Platform::cpu().time(&k, 16);
        let gpu = Platform::gpu().time(&k, 16);
        assert!(cpu > 10.0 * gpu);
    }

    #[test]
    fn cpu_wins_tiny_kernels_via_low_launch_cost() {
        let k = Kernel {
            flops_per_item: 1000,
            bytes_per_item: 100,
            shared_bytes: 0,
        };
        let cpu = Platform::cpu().time(&k, 1);
        let gpu = Platform::gpu().time(&k, 1);
        assert!(cpu < gpu, "cpu {cpu} gpu {gpu}");
    }

    #[test]
    fn hybrid_improves_encode_bound_pipelines() {
        // Encode-heavy pipeline: big MVM then small search.
        let encode = Kernel::mvm(8192, 4096);
        let search = Kernel::search(26, 8192, 4);
        let gpu = Platform::gpu();
        let pure = gpu.time(&encode, 64) + gpu.time(&search, 64);
        let hybrid = HybridPipeline::tpu_gpu().time(&encode, &search, 64);
        assert!(hybrid < pure, "hybrid {hybrid} pure {pure}");
    }

    #[test]
    fn energy_positive_and_proportional() {
        let gpu = Platform::gpu();
        let k = Kernel::mvm(1024, 1024);
        let e1 = gpu.energy(&k, 1);
        let e10 = gpu.energy(&k, 10);
        assert!(e1 > 0.0);
        assert!(e10 > e1);
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn zero_batch_panics() {
        Platform::gpu().time(&Kernel::mvm(8, 8), 0);
    }
}
