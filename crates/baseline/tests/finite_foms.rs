//! Property: cross-layer evaluation over the valid scenario domain
//! never emits a non-finite or out-of-range figure of merit.
//!
//! This is the contract the DSE layer leans on after the fallible-
//! evaluation refactor: any scenario drawn from the valid parameter
//! domain either models (with every FOM finite and in range) or is
//! rejected with a typed *infeasibility* error — never a panic, never a
//! NaN smuggled into a ranking.

use proptest::prelude::*;
use xlda_circuit::tech::TechNode;
use xlda_core::evaluate::{HdcScenario, MannScenario, Scenario, TpuNvmScenario};

fn arb_tech() -> impl Strategy<Value = TechNode> {
    prop::sample::select(vec![TechNode::n130(), TechNode::n40(), TechNode::n22()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hdc_candidates_are_finite_over_valid_domain(
        dim_in in 8usize..2048,
        classes in 1usize..256,
        (hv_sw, hv_3b, hv_2b, hv_1b) in (64usize..8192, 64usize..8192, 64usize..8192, 64usize..8192),
        (acc_sw, acc_3b, acc_2b, acc_1b, acc_mlp) in
            (0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0),
        tech in arb_tech(),
    ) {
        let s = HdcScenario {
            dim_in,
            classes,
            hv_dim_sw: hv_sw,
            hv_dim_3b: hv_3b,
            hv_dim_2b: hv_2b,
            hv_dim_1b: hv_1b,
            acc_sw,
            acc_3b,
            acc_2b,
            acc_1b,
            acc_mlp,
            tech,
        };
        match s.candidates() {
            Ok(cands) => {
                prop_assert_eq!(cands.len(), 8);
                for c in &cands {
                    prop_assert!(c.fom.is_valid(), "{}: {:?}", c.name, c.fom);
                    prop_assert!(c.fom.latency_s > 0.0, "{}: zero latency", c.name);
                    prop_assert!(c.fom.edp().is_finite());
                }
            }
            // A valid-domain scenario may still be unbuildable (sense
            // margin); it must be reported as infeasible, not invalid.
            Err(e) => prop_assert!(e.is_infeasible(), "unexpected invalid-point error: {e}"),
        }
    }

    #[test]
    fn mann_candidates_are_finite_over_valid_domain(
        weights in 1000usize..200_000,
        emb_dim in 8usize..256,
        hash_bits in 32usize..512,
        entries in 1usize..1024,
        (acc_software, acc_rram) in (0.0f64..=1.0, 0.0f64..=1.0),
        tech in arb_tech(),
    ) {
        let s = MannScenario {
            weights,
            emb_dim,
            hash_bits,
            entries,
            acc_software,
            acc_rram,
            tech,
        };
        match s.candidates() {
            Ok(cands) => {
                prop_assert_eq!(cands.len(), 2);
                for c in &cands {
                    prop_assert!(c.fom.is_valid(), "{}: {:?}", c.name, c.fom);
                    prop_assert!(c.fom.latency_s > 0.0 && c.fom.energy_j > 0.0);
                }
            }
            Err(e) => prop_assert!(e.is_infeasible(), "unexpected invalid-point error: {e}"),
        }
    }

    #[test]
    fn tpu_nvm_candidate_is_finite_over_valid_domain(
        dim_in in 8usize..2048,
        hv_sw in 64usize..8192,
        batch in 1usize..2000,
        tech in arb_tech(),
    ) {
        let s = HdcScenario {
            dim_in,
            hv_dim_sw: hv_sw,
            tech,
            ..HdcScenario::default()
        };
        match TpuNvmScenario::new(s, batch).candidates() {
            Ok(cands) => {
                prop_assert_eq!(cands.len(), 1);
                let c = &cands[0];
                prop_assert!(c.fom.is_valid(), "{}: {:?}", c.name, c.fom);
                prop_assert!(c.fom.area_mm2 > 0.0, "NVM store has silicon area");
            }
            Err(e) => prop_assert!(e.is_infeasible(), "unexpected invalid-point error: {e}"),
        }
    }
}
