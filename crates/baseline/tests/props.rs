//! Property-based tests for the platform models.

use proptest::prelude::*;
use xlda_baseline::{HybridPipeline, Kernel, Platform};

fn arb_kernel() -> impl Strategy<Value = Kernel> {
    (1u64..1_000_000_000, 0u64..10_000_000, 0u64..100_000_000).prop_map(
        |(flops_per_item, bytes_per_item, shared_bytes)| Kernel {
            flops_per_item,
            bytes_per_item,
            shared_bytes,
        },
    )
}

fn arb_platform() -> impl Strategy<Value = Platform> {
    prop::sample::select(vec![
        Platform::gpu(),
        Platform::tpu(),
        Platform::cpu(),
        Platform::edge_gpu(),
    ])
}

proptest! {
    #[test]
    fn time_and_energy_positive(k in arb_kernel(), p in arb_platform(), batch in 1usize..10_000) {
        let t = p.time(&k, batch);
        prop_assert!(t > 0.0 && t.is_finite());
        prop_assert!(p.energy(&k, batch) > 0.0);
    }

    #[test]
    fn time_monotone_in_batch(k in arb_kernel(), p in arb_platform(), batch in 1usize..5_000) {
        prop_assert!(p.time(&k, batch * 2) >= p.time(&k, batch));
    }

    #[test]
    fn per_item_time_never_worse_with_batching(k in arb_kernel(), p in arb_platform(), batch in 2usize..5_000) {
        // Launch overhead and shared bytes amortize; per-item cost can
        // only fall (or stay flat) as batch grows.
        prop_assert!(p.time_per_item(&k, batch) <= p.time_per_item(&k, 1) + 1e-15);
    }

    #[test]
    fn time_at_least_each_roofline(k in arb_kernel(), p in arb_platform(), batch in 1usize..1_000) {
        let t = p.time(&k, batch) - p.launch_overhead;
        let flops = (k.flops_per_item * batch as u64) as f64;
        let bytes = (k.shared_bytes + k.bytes_per_item * batch as u64) as f64;
        prop_assert!(t >= flops / (p.peak_flops * p.efficiency) - 1e-12);
        prop_assert!(t >= bytes / p.mem_bw - 1e-12);
    }

    #[test]
    fn hybrid_time_is_sum_of_parts_plus_handoff(a in arb_kernel(), b in arb_kernel(), batch in 1usize..1_000) {
        let h = HybridPipeline::tpu_gpu();
        let t = h.time(&a, &b, batch);
        let expect = h.first.time(&a, batch) + h.handoff + h.second.time(&b, batch);
        prop_assert!((t - expect).abs() < 1e-12 * (1.0 + expect));
    }
}
