use xlda_syssim::study::*;
use xlda_syssim::system::SystemConfig;
use xlda_syssim::workload::*;
fn main() {
    for w in [
        cnn_trace(10),
        lstm_trace(16, 512),
        transformer_trace(4, 512, 256),
        hdc_trace(617, 4096, 26),
    ] {
        let r = offload_speedup(&w, &SystemConfig::with_crossbar());
        println!(
            "{:20} frac {:.3} cpu {:.4}s accel {:.4}s speedup {:.2} egain {:.2}",
            r.workload, r.offload_fraction, r.cpu_time_s, r.accel_time_s, r.speedup, r.energy_gain
        );
    }
}
