//! Speedup studies (the Sec. V evaluation).
//!
//! Sweeps accelerator attachment over benchmark workloads and reports
//! end-to-end speedup — the system-simulation methodology the paper
//! credits with showing "up to 20×" CNN speedup from analog crossbars
//! (ALPINE), plus the Amdahl sensitivity to the offloadable fraction.

use crate::system::{System, SystemConfig};
use crate::workload::Workload;

/// One row of the speedup study.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SpeedupRow {
    /// Workload name.
    pub workload: String,
    /// Offloadable operation fraction.
    pub offload_fraction: f64,
    /// CPU-only end-to-end time (s).
    pub cpu_time_s: f64,
    /// Accelerated end-to-end time (s).
    pub accel_time_s: f64,
    /// End-to-end speedup.
    pub speedup: f64,
    /// Energy ratio (CPU / accelerated).
    pub energy_gain: f64,
}

/// Runs a workload on the CPU-only and accelerated systems and reports
/// the end-to-end speedup.
pub fn offload_speedup(workload: &Workload, accel_config: &SystemConfig) -> SpeedupRow {
    let cpu = System::new(&SystemConfig::cpu_only()).run(workload);
    let acc = System::new(accel_config).run(workload);
    SpeedupRow {
        workload: workload.name.clone(),
        offload_fraction: workload.offloadable_fraction(),
        cpu_time_s: cpu.total_time_s,
        accel_time_s: acc.total_time_s,
        speedup: cpu.total_time_s / acc.total_time_s,
        energy_gain: cpu.energy_j / acc.energy_j,
    }
}

/// Sweeps several workloads against the default crossbar system.
pub fn benchmark_suite(workloads: &[Workload]) -> Vec<SpeedupRow> {
    let cfg = SystemConfig::with_crossbar();
    workloads.iter().map(|w| offload_speedup(w, &cfg)).collect()
}

/// Amdahl sensitivity: speedup as a function of the offloadable fraction,
/// built from a synthetic workload whose MVM share is swept.
pub fn amdahl_sweep(fractions: &[f64]) -> Vec<(f64, f64)> {
    use crate::workload::{KernelOp, Workload};
    fractions
        .iter()
        .map(|&f| {
            let total: u64 = 20_000_000_000;
            let off = (total as f64 * f) as u64;
            let w = Workload {
                name: format!("synthetic-{f:.2}"),
                kernels: vec![
                    KernelOp {
                        name: "mvm".into(),
                        compute_ops: off.max(1),
                        weight_bytes: off / 16,
                        activation_bytes: off / 256,
                        offloadable: true,
                    },
                    KernelOp {
                        name: "scalar".into(),
                        compute_ops: (total - off).max(1),
                        weight_bytes: 0,
                        activation_bytes: (total - off) / 16,
                        offloadable: false,
                    },
                ],
            };
            let row = offload_speedup(&w, &SystemConfig::with_crossbar());
            (f, row.speedup)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{cnn_trace, lstm_trace, transformer_trace};

    #[test]
    fn cnn_speedup_in_papers_band() {
        // Sec. V: "analog crossbars can speed up the execution of
        // benchmark convolutional networks by up to 20X".
        let row = offload_speedup(&cnn_trace(10), &SystemConfig::with_crossbar());
        assert!(
            row.speedup > 8.0 && row.speedup < 40.0,
            "speedup {}",
            row.speedup
        );
    }

    #[test]
    fn cnn_gains_most_across_suite() {
        let rows = benchmark_suite(&[
            cnn_trace(10),
            lstm_trace(16, 512),
            transformer_trace(4, 512, 256),
        ]);
        let cnn = rows[0].speedup;
        let lstm = rows[1].speedup;
        let tfm = rows[2].speedup;
        assert!(cnn > tfm, "cnn {cnn} transformer {tfm}");
        assert!(tfm > lstm || cnn > lstm, "lstm should gain least: {lstm}");
        assert!(rows.iter().all(|r| r.speedup > 1.0));
    }

    #[test]
    fn amdahl_sweep_is_monotone() {
        let points = amdahl_sweep(&[0.0, 0.5, 0.9, 0.99]);
        for w in points.windows(2) {
            assert!(
                w[1].1 >= w[0].1 * 0.95,
                "speedup should not fall as offload grows: {points:?}"
            );
        }
        // Near-zero offload ~ no speedup; heavy offload >> 1.
        assert!(points[0].1 < 1.5);
        assert!(points[3].1 > 5.0);
    }
}
