//! Accelerator-level parallelism (ALP) study.
//!
//! The paper cites Hill & Reddi's "accelerator-level parallelism" as the
//! nascent modeling need for integrated heterogeneous architectures
//! (Sec. I: "modeling infrastructure that facilitates the evaluation of
//! integrated, heterogeneous architectures is nascent \[9\]"). This module
//! provides that evaluation for our system model: multiple workload
//! *streams* share one core and one accelerator, and the event-driven
//! engine overlaps stream A's CPU kernels with stream B's accelerator
//! kernels — quantifying how much of the heterogeneous silicon a
//! multi-programmed deployment actually keeps busy.

use crate::event::{EventQueue, SimTime};
use crate::system::{System, SystemConfig};
use crate::workload::Workload;

/// Which shared resource a kernel occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Resource {
    Cpu,
    Accel,
}

/// Outcome of a multi-stream run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AlpReport {
    /// End-to-end time running the streams back-to-back (s).
    pub serial_time_s: f64,
    /// End-to-end makespan with resource-level overlap (s).
    pub concurrent_time_s: f64,
    /// Throughput gain from accelerator-level parallelism.
    pub alp_speedup: f64,
    /// Fraction of the makespan the CPU is busy.
    pub cpu_utilization: f64,
    /// Fraction of the makespan the accelerator is busy.
    pub accel_utilization: f64,
    /// Events processed by the scheduler.
    pub events: usize,
}

/// Per-stream cursor during simulation.
struct StreamState {
    /// Pre-computed (resource, duration) per kernel.
    kernels: Vec<(Resource, f64)>,
    next: usize,
}

/// Runs `streams` concurrently on a system, overlapping CPU and
/// accelerator occupancy across streams (within a stream, kernels remain
/// strictly ordered).
///
/// # Panics
///
/// Panics if `streams` is empty.
pub fn run_streams(config: &SystemConfig, streams: &[Workload]) -> AlpReport {
    assert!(!streams.is_empty(), "need at least one stream");
    let system = System::new(config);

    // Pre-time every kernel with the single-stream model; the scheduler
    // then arbitrates resource occupancy.
    let mut states: Vec<StreamState> = streams
        .iter()
        .map(|w| {
            let rep = system.run(w);
            StreamState {
                kernels: rep
                    .kernels
                    .iter()
                    .map(|k| {
                        (
                            if k.on_accel {
                                Resource::Accel
                            } else {
                                Resource::Cpu
                            },
                            k.time_s,
                        )
                    })
                    .collect(),
                next: 0,
            }
        })
        .collect();
    let serial_time_s: f64 = states
        .iter()
        .flat_map(|s| s.kernels.iter().map(|(_, t)| *t))
        .sum();

    // Event-driven arbitration: a stream posts its next kernel when the
    // previous one completes and the resource frees up.
    #[derive(Debug, Clone, Copy)]
    enum Ev {
        KernelDone { stream: usize },
    }
    let mut q: EventQueue<Ev> = EventQueue::new();
    let mut resource_free_at = [0.0f64; 2]; // [Cpu, Accel]
    let mut stream_free_at = vec![0.0f64; streams.len()];
    let mut busy = [0.0f64; 2];
    let mut events = 0usize;

    let idx = |r: Resource| match r {
        Resource::Cpu => 0,
        Resource::Accel => 1,
    };

    // Seed: try to launch the first kernel of every stream.
    fn launch(
        s: usize,
        states: &mut [StreamState],
        stream_free_at: &mut [f64],
        resource_free_at: &mut [f64; 2],
        busy: &mut [f64; 2],
        q: &mut EventQueue<Ev>,
        idx: &dyn Fn(Resource) -> usize,
    ) {
        let st = &mut states[s];
        if st.next >= st.kernels.len() {
            return;
        }
        let (res, dur) = st.kernels[st.next];
        let start = stream_free_at[s].max(resource_free_at[idx(res)]);
        let done = start + dur;
        resource_free_at[idx(res)] = done;
        stream_free_at[s] = done;
        busy[idx(res)] += dur;
        st.next += 1;
        q.schedule_at(SimTime::from_secs(done), Ev::KernelDone { stream: s });
    }

    for s in 0..streams.len() {
        launch(
            s,
            &mut states,
            &mut stream_free_at,
            &mut resource_free_at,
            &mut busy,
            &mut q,
            &idx,
        );
    }
    let mut makespan = 0.0f64;
    while let Some((t, Ev::KernelDone { stream, .. })) = q.pop() {
        events += 1;
        makespan = makespan.max(t.as_secs());
        launch(
            stream,
            &mut states,
            &mut stream_free_at,
            &mut resource_free_at,
            &mut busy,
            &mut q,
            &idx,
        );
    }

    AlpReport {
        serial_time_s,
        concurrent_time_s: makespan,
        alp_speedup: serial_time_s / makespan.max(1e-15),
        cpu_utilization: busy[0] / makespan.max(1e-15),
        accel_utilization: busy[1] / makespan.max(1e-15),
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{cnn_trace, lstm_trace};

    #[test]
    fn single_stream_has_no_alp_gain() {
        let r = run_streams(&SystemConfig::with_crossbar(), &[cnn_trace(4)]);
        assert!((r.alp_speedup - 1.0).abs() < 1e-9, "{r:?}");
        assert!((r.serial_time_s - r.concurrent_time_s).abs() < 1e-12);
    }

    #[test]
    fn mixed_streams_overlap() {
        // A CPU-bound stream and an accelerator-bound stream of similar
        // durations: ALP should approach 2x by running them on disjoint
        // resources.
        use crate::workload::{KernelOp, Workload};
        let cpu_stream = Workload {
            name: "scalar-analytics".into(),
            kernels: (0..8)
                .map(|i| KernelOp {
                    name: format!("scalar{i}"),
                    compute_ops: 40_000_000,
                    weight_bytes: 0,
                    activation_bytes: 1_000_000,
                    offloadable: false,
                })
                .collect(),
        };
        let accel_stream = cnn_trace(6); // overwhelmingly offloadable
        let r = run_streams(&SystemConfig::with_crossbar(), &[accel_stream, cpu_stream]);
        assert!(r.alp_speedup > 1.3, "speedup {:.3}", r.alp_speedup);
        assert!(r.concurrent_time_s < r.serial_time_s);
        assert!(r.cpu_utilization > 0.0 && r.cpu_utilization <= 1.0 + 1e-9);
        assert!(r.accel_utilization > 0.0 && r.accel_utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn more_streams_raise_utilization() {
        let two = run_streams(
            &SystemConfig::with_crossbar(),
            &[cnn_trace(4), lstm_trace(8, 512)],
        );
        let four = run_streams(
            &SystemConfig::with_crossbar(),
            &[
                cnn_trace(4),
                lstm_trace(8, 512),
                cnn_trace(4),
                lstm_trace(8, 512),
            ],
        );
        let u2 = two.cpu_utilization + two.accel_utilization;
        let u4 = four.cpu_utilization + four.accel_utilization;
        assert!(u4 >= u2 * 0.99, "u2 {u2} u4 {u4}");
    }

    #[test]
    fn makespan_bounded_by_resource_totals() {
        let streams = [cnn_trace(4), lstm_trace(8, 256)];
        let r = run_streams(&SystemConfig::with_crossbar(), &streams);
        // Makespan is at least the busiest single resource, at most the
        // fully serial time.
        let busiest = (r.cpu_utilization.max(r.accel_utilization)) * r.concurrent_time_s;
        assert!(r.concurrent_time_s >= busiest - 1e-12);
        assert!(r.concurrent_time_s <= r.serial_time_s + 1e-12);
    }

    #[test]
    fn cpu_only_system_serializes_everything() {
        let streams = [cnn_trace(3), cnn_trace(3)];
        let r = run_streams(&SystemConfig::cpu_only(), &streams);
        // One shared resource: no overlap possible.
        assert!((r.alp_speedup - 1.0).abs() < 1e-9, "{r:?}");
    }
}
