//! Workload kernel traces.
//!
//! A workload is a dependency-ordered list of kernels, each with compute
//! and memory demands and an "offloadable" flag (dense MVM-shaped work an
//! analog crossbar can absorb). Trace builders approximate the benchmark
//! families the gem5-X studies evaluate: CNNs, LSTMs, and transformers,
//! plus the HDC and MANN pipelines of the case studies.

/// One kernel invocation in a workload trace.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct KernelOp {
    /// Kernel label (reports).
    pub name: String,
    /// Arithmetic operations (MAC = 2 ops).
    pub compute_ops: u64,
    /// Stationary parameter bytes (weights). Crossbar accelerators hold
    /// these resident in the array; CPUs must stream them.
    pub weight_bytes: u64,
    /// Per-invocation activation/data bytes (always move).
    pub activation_bytes: u64,
    /// Whether an analog crossbar can execute it (dense MVM-like).
    pub offloadable: bool,
}

impl KernelOp {
    /// Total bytes a cache-based core streams.
    pub fn cpu_bytes(&self) -> u64 {
        self.weight_bytes + self.activation_bytes
    }
}

/// A named sequence of kernels.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Workload {
    /// Workload label.
    pub name: String,
    /// Kernels in dependency order.
    pub kernels: Vec<KernelOp>,
}

impl Workload {
    /// Total arithmetic operations.
    pub fn total_ops(&self) -> u64 {
        self.kernels.iter().map(|k| k.compute_ops).sum()
    }

    /// Fraction of operations in offloadable kernels (the Amdahl knob).
    pub fn offloadable_fraction(&self) -> f64 {
        let off: u64 = self
            .kernels
            .iter()
            .filter(|k| k.offloadable)
            .map(|k| k.compute_ops)
            .sum();
        off as f64 / self.total_ops().max(1) as f64
    }
}

/// A VGG-ish CNN inference trace with `conv_layers` convolution layers.
///
/// Convolutions (offloadable MVMs) dominate; interleaved with
/// non-offloadable activation/pooling/normalization kernels.
///
/// # Panics
///
/// Panics if `conv_layers == 0`.
pub fn cnn_trace(conv_layers: usize) -> Workload {
    assert!(conv_layers > 0, "need at least one layer");
    let mut kernels = Vec::new();
    let mut hw = 224usize;
    let mut channels = 32usize;
    for l in 0..conv_layers {
        let macs = (hw * hw * channels * channels * 9) as u64;
        let act_bytes = (hw * hw * channels * 4) as u64;
        let w_bytes = (channels * channels * 9 * 4) as u64;
        kernels.push(KernelOp {
            name: format!("conv{l}"),
            compute_ops: 2 * macs,
            weight_bytes: w_bytes,
            activation_bytes: act_bytes,
            offloadable: true,
        });
        kernels.push(KernelOp {
            name: format!("relu_pool{l}"),
            compute_ops: (hw * hw * channels * 4) as u64,
            weight_bytes: 0,
            activation_bytes: 2 * act_bytes,
            offloadable: false,
        });
        if l % 2 == 1 && hw > 14 {
            hw /= 2;
            channels = (channels * 2).min(512);
        }
    }
    kernels.push(KernelOp {
        name: "fc".into(),
        compute_ops: 2 * 4096 * 1000,
        weight_bytes: 4096 * 1000 * 4,
        activation_bytes: (4096 + 1000) * 4,
        offloadable: true,
    });
    kernels.push(KernelOp {
        name: "softmax".into(),
        compute_ops: 10_000,
        weight_bytes: 0,
        activation_bytes: 8_000,
        offloadable: false,
    });
    Workload {
        name: format!("cnn-{conv_layers}L"),
        kernels,
    }
}

/// An LSTM inference trace (`steps` timesteps of a `hidden`-wide cell).
///
/// Gate MVMs offload; elementwise gate math does not, and it is a larger
/// share than in CNNs — LSTMs benefit less from crossbars.
pub fn lstm_trace(steps: usize, hidden: usize) -> Workload {
    let mut kernels = Vec::new();
    for t in 0..steps {
        let macs = (8 * hidden * hidden) as u64;
        kernels.push(KernelOp {
            name: format!("gates_mvm{t}"),
            compute_ops: 2 * macs,
            weight_bytes: (8 * hidden * hidden * 4) as u64,
            activation_bytes: (10 * hidden * 4) as u64,
            offloadable: true,
        });
        kernels.push(KernelOp {
            name: format!("gate_elementwise{t}"),
            compute_ops: (24 * hidden) as u64 * 40,
            weight_bytes: 0,
            activation_bytes: (16 * hidden * 4) as u64,
            offloadable: false,
        });
    }
    Workload {
        name: format!("lstm-{steps}x{hidden}"),
        kernels,
    }
}

/// A transformer-encoder trace (`layers` blocks, `dim` model width,
/// `tokens` sequence length).
pub fn transformer_trace(layers: usize, dim: usize, tokens: usize) -> Workload {
    let mut kernels = Vec::new();
    for l in 0..layers {
        let proj_macs = (4 * tokens * dim * dim) as u64;
        kernels.push(KernelOp {
            name: format!("qkv_proj{l}"),
            compute_ops: 2 * proj_macs,
            weight_bytes: (4 * dim * dim * 4) as u64,
            activation_bytes: (5 * tokens * dim * 4) as u64,
            offloadable: true,
        });
        // Attention scores are activation-activation products: not
        // weight-stationary, so not crossbar-offloadable.
        let attn = (2 * tokens * tokens * dim) as u64;
        kernels.push(KernelOp {
            name: format!("attention{l}"),
            compute_ops: 2 * attn,
            weight_bytes: 0,
            activation_bytes: ((tokens * tokens + 2 * tokens * dim) * 4) as u64,
            offloadable: false,
        });
        let ffn_macs = (8 * tokens * dim * dim) as u64;
        kernels.push(KernelOp {
            name: format!("ffn{l}"),
            compute_ops: 2 * ffn_macs,
            weight_bytes: (8 * dim * dim * 4) as u64,
            activation_bytes: (5 * tokens * dim * 4) as u64,
            offloadable: true,
        });
        kernels.push(KernelOp {
            name: format!("norm_residual{l}"),
            compute_ops: (tokens * dim * 10) as u64,
            weight_bytes: 0,
            activation_bytes: (tokens * dim * 8) as u64,
            offloadable: false,
        });
    }
    Workload {
        name: format!("transformer-{layers}L"),
        kernels,
    }
}

/// The HDC inference pipeline (encode MVM + associative search).
pub fn hdc_trace(dim_in: usize, hv_dim: usize, classes: usize) -> Workload {
    Workload {
        name: "hdc".into(),
        kernels: vec![
            KernelOp {
                name: "encode".into(),
                compute_ops: 2 * (dim_in * hv_dim) as u64,
                weight_bytes: (dim_in * hv_dim / 8) as u64,
                activation_bytes: ((dim_in + hv_dim) * 4) as u64,
                offloadable: true,
            },
            KernelOp {
                name: "search".into(),
                compute_ops: 2 * (classes * hv_dim) as u64,
                weight_bytes: (classes * hv_dim) as u64,
                activation_bytes: (hv_dim * 4) as u64,
                offloadable: true,
            },
        ],
    }
}

/// The MANN inference pipeline (CNN embed + hash + AM search).
pub fn mann_trace(weights: usize, emb_dim: usize, hash_bits: usize, entries: usize) -> Workload {
    Workload {
        name: "mann".into(),
        kernels: vec![
            KernelOp {
                name: "cnn_embed".into(),
                compute_ops: 2 * (weights as u64) * 50,
                weight_bytes: (weights * 4) as u64,
                activation_bytes: 28 * 28 * 4,
                offloadable: true,
            },
            KernelOp {
                name: "lsh_hash".into(),
                compute_ops: 2 * (emb_dim * hash_bits) as u64,
                weight_bytes: (emb_dim * hash_bits * 4) as u64,
                activation_bytes: (emb_dim * 4) as u64,
                offloadable: true,
            },
            KernelOp {
                name: "am_search".into(),
                compute_ops: 2 * (entries * hash_bits) as u64,
                weight_bytes: (entries * hash_bits / 8) as u64,
                activation_bytes: (hash_bits / 8).max(1) as u64,
                offloadable: true,
            },
            KernelOp {
                name: "argmin".into(),
                compute_ops: entries as u64 * 4,
                weight_bytes: 0,
                activation_bytes: entries as u64 * 4,
                offloadable: false,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cnn_is_overwhelmingly_offloadable() {
        let w = cnn_trace(8);
        assert!(
            w.offloadable_fraction() > 0.95,
            "{}",
            w.offloadable_fraction()
        );
        assert!(w.total_ops() > 1_000_000_000);
    }

    #[test]
    fn lstm_less_offloadable_than_cnn() {
        let cnn = cnn_trace(8);
        let lstm = lstm_trace(16, 512);
        assert!(lstm.offloadable_fraction() < cnn.offloadable_fraction());
        assert!(lstm.offloadable_fraction() > 0.5);
    }

    #[test]
    fn transformer_attention_is_not_offloadable() {
        let w = transformer_trace(4, 512, 256);
        let attn_ops: u64 = w
            .kernels
            .iter()
            .filter(|k| k.name.starts_with("attention"))
            .map(|k| k.compute_ops)
            .sum();
        assert!(attn_ops > 0);
        assert!(w.offloadable_fraction() < 1.0);
        assert!(w.offloadable_fraction() > 0.7);
    }

    #[test]
    fn trace_kernel_counts() {
        assert_eq!(cnn_trace(4).kernels.len(), 4 * 2 + 2);
        assert_eq!(lstm_trace(3, 128).kernels.len(), 6);
        assert_eq!(hdc_trace(617, 4096, 26).kernels.len(), 2);
        assert_eq!(mann_trace(65_000, 64, 128, 25).kernels.len(), 4);
    }
}
