//! Event-driven system-level simulator (paper Sec. V).
//!
//! Plays the role gem5-X plays in the paper: estimate the *end-to-end*
//! benefit of a technology-enabled accelerator inside a full system —
//! core, cache hierarchy, DRAM, and a tightly coupled analog-crossbar
//! accelerator — before committing to detailed hardware design. The
//! ALPINE-style study ("analog crossbars can speed up benchmark
//! convolutional networks by up to 20×") is reproduced by
//! [`study::offload_speedup`].
//!
//! The simulator is event-driven at the granularity the analysis needs:
//! CPU kernels are single timed events against a core+cache+DRAM model,
//! while accelerator kernels are decomposed into tile DMA and tile
//! compute events that overlap under double buffering.
//!
//! # Examples
//!
//! ```
//! use xlda_syssim::system::{System, SystemConfig};
//! use xlda_syssim::workload::cnn_trace;
//!
//! let workload = cnn_trace(8);
//! let plain = System::new(&SystemConfig::cpu_only()).run(&workload);
//! let accel = System::new(&SystemConfig::with_crossbar()).run(&workload);
//! assert!(accel.total_time_s < plain.total_time_s);
//! ```

pub mod alp;
pub mod event;
pub mod study;
pub mod system;
pub mod workload;
