//! Discrete-event machinery.
//!
//! A minimal but real event queue: events carry a timestamp in
//! picoseconds and a payload; ties break by insertion sequence so
//! simulation is fully deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation time in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Zero time.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from seconds.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite input.
    pub fn from_secs(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "bad time");
        SimTime((s * 1e12).round() as u64)
    }

    /// Converts to seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 * 1e-12
    }

    /// Saturating addition of a duration in seconds.
    pub fn advance(self, s: f64) -> Self {
        SimTime(self.0.saturating_add((s * 1e12).round() as u64))
    }
}

/// An event scheduled at a time, carrying payload `T`.
#[derive(Debug, Clone)]
struct Event<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Event<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Event<T> {}

impl<T> Ord for Event<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap; ties broken by insertion order.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> PartialOrd for Event<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic discrete-event queue.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Event<T>>,
    seq: u64,
    now: SimTime,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at absolute time `t`.
    ///
    /// # Panics
    ///
    /// Panics when scheduling in the past.
    pub fn schedule_at(&mut self, t: SimTime, payload: T) {
        assert!(t >= self.now, "cannot schedule in the past");
        self.heap.push(Event {
            time: t,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Schedules `payload` after `delay_s` seconds of simulated time.
    pub fn schedule_in(&mut self, delay_s: f64, payload: T) {
        self.schedule_at(self.now.advance(delay_s), payload);
    }

    /// Pops the next event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| {
            self.now = e.time;
            (e.time, e.payload)
        })
    }

    /// Whether any events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Pending event count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(30), "c");
        q.schedule_at(SimTime(10), "a");
        q.schedule_at(SimTime(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(5), 1);
        q.schedule_at(SimTime(5), 2);
        q.schedule_at(SimTime(5), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_in(1e-9, ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(1000));
    }

    #[test]
    #[should_panic(expected = "cannot schedule in the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(100), ());
        q.pop();
        q.schedule_at(SimTime(50), ());
    }

    #[test]
    fn simtime_conversions() {
        let t = SimTime::from_secs(2.5e-9);
        assert_eq!(t, SimTime(2500));
        assert!((t.as_secs() - 2.5e-9).abs() < 1e-15);
    }
}
