//! System model: core, cache hierarchy, DRAM, and crossbar accelerator.

use crate::event::EventQueue;
use crate::workload::{KernelOp, Workload};

/// In-order core parameters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CoreConfig {
    /// Clock frequency (Hz).
    pub freq_hz: f64,
    /// Sustained operations per cycle.
    pub ipc: f64,
    /// Kernel dispatch overhead (s).
    pub dispatch_s: f64,
    /// Active power (W).
    pub power_w: f64,
}

impl Default for CoreConfig {
    /// A 2 GHz core sustaining 32 ops/cycle with SIMD (≈64 GOP/s).
    fn default() -> Self {
        Self {
            freq_hz: 2e9,
            ipc: 32.0,
            dispatch_s: 0.5e-6,
            power_w: 10.0,
        }
    }
}

/// Two-level cache parameters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CacheConfig {
    /// L1 hit rate for streaming kernels.
    pub l1_hit: f64,
    /// L2 hit rate on L1 misses.
    pub l2_hit: f64,
    /// L2 access latency (s) charged per miss burst.
    pub l2_latency_s: f64,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            l1_hit: 0.80,
            l2_hit: 0.50,
            l2_latency_s: 8e-9,
        }
    }
}

/// DRAM channel parameters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DramConfig {
    /// Sustained bandwidth (B/s).
    pub bandwidth: f64,
    /// First-access latency (s).
    pub latency_s: f64,
    /// Energy per byte (J/B).
    pub energy_per_byte: f64,
}

impl Default for DramConfig {
    /// LPDDR4-class channel.
    fn default() -> Self {
        Self {
            bandwidth: 25e9,
            latency_s: 60e-9,
            energy_per_byte: 20e-12,
        }
    }
}

/// Analog crossbar accelerator parameters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AccelConfig {
    /// Crossbar tile rows.
    pub rows: usize,
    /// Crossbar tile columns.
    pub cols: usize,
    /// Latency of one tile MVM, converters included (s).
    pub mvm_latency_s: f64,
    /// Energy of one tile MVM (J).
    pub mvm_energy_j: f64,
    /// Parallel crossbar tiles.
    pub units: usize,
    /// DMA bandwidth between memory and the accelerator (B/s).
    pub dma_bandwidth: f64,
    /// Per-kernel accelerator setup cost (s).
    pub setup_s: f64,
    /// Whether tile DMA overlaps tile compute (double buffering).
    pub double_buffer: bool,
}

impl Default for AccelConfig {
    /// A 2-tile 256×256 analog macro, ~200 ns per tile MVM
    /// (≈1.3 TOP/s peak — ~20× the default core).
    fn default() -> Self {
        Self {
            rows: 256,
            cols: 256,
            mvm_latency_s: 200e-9,
            mvm_energy_j: 3e-9,
            units: 2,
            dma_bandwidth: 20e9,
            setup_s: 1e-6,
            double_buffer: true,
        }
    }
}

/// Complete system configuration.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SystemConfig {
    /// Core model.
    pub core: CoreConfig,
    /// Cache model.
    pub cache: CacheConfig,
    /// DRAM model.
    pub dram: DramConfig,
    /// Optional tightly coupled crossbar accelerator.
    pub accel: Option<AccelConfig>,
}

impl SystemConfig {
    /// A CPU-only baseline system.
    pub fn cpu_only() -> Self {
        Self {
            core: CoreConfig::default(),
            cache: CacheConfig::default(),
            dram: DramConfig::default(),
            accel: None,
        }
    }

    /// The same system with the default crossbar accelerator attached.
    pub fn with_crossbar() -> Self {
        Self {
            accel: Some(AccelConfig::default()),
            ..Self::cpu_only()
        }
    }
}

/// Per-kernel simulation record.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct KernelRecord {
    /// Kernel name.
    pub name: String,
    /// Time spent (s).
    pub time_s: f64,
    /// Whether it ran on the accelerator.
    pub on_accel: bool,
}

/// Simulation outcome.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SimReport {
    /// End-to-end time (s).
    pub total_time_s: f64,
    /// Total energy (J).
    pub energy_j: f64,
    /// Per-kernel breakdown.
    pub kernels: Vec<KernelRecord>,
    /// Number of discrete events processed.
    pub events: usize,
}

/// Accelerator tile event payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TileEvent {
    DmaDone(usize),
    ComputeDone(usize),
}

/// An instantiated system ready to run workloads.
#[derive(Debug, Clone)]
pub struct System {
    config: SystemConfig,
}

impl System {
    /// Builds a system from its configuration.
    pub fn new(config: &SystemConfig) -> Self {
        Self {
            config: config.clone(),
        }
    }

    /// CPU execution time of one kernel (s): dispatch plus the larger of
    /// the compute and memory streams (hardware prefetch overlaps them).
    fn cpu_kernel_time(&self, k: &KernelOp) -> f64 {
        let c = &self.config.core;
        let t_compute = k.compute_ops as f64 / (c.freq_hz * c.ipc);
        let cache = &self.config.cache;
        let l1_miss = 1.0 - cache.l1_hit;
        let l2_traffic = k.cpu_bytes() as f64 * l1_miss;
        let dram_traffic = l2_traffic * (1.0 - cache.l2_hit);
        let t_mem = l2_traffic / 100e9 // L2 bandwidth
            + dram_traffic / self.config.dram.bandwidth
            + self.config.dram.latency_s
            + cache.l2_latency_s;
        c.dispatch_s + t_compute.max(t_mem)
    }

    /// Accelerator execution: tile-level event simulation with optional
    /// double buffering. Returns (time, events processed).
    fn accel_kernel_time(&self, k: &KernelOp, accel: &AccelConfig) -> (f64, usize) {
        let ops_per_tile = (2 * accel.rows * accel.cols) as u64;
        let tiles = k.compute_ops.div_ceil(ops_per_tile).max(1) as usize;
        // Weights are resident in the crossbars; only activations move.
        let dma_per_tile = (k.activation_bytes as f64 / tiles as f64) / accel.dma_bandwidth;
        let mut q: EventQueue<TileEvent> = EventQueue::new();
        let mut events = 0usize;

        // DMA engine is serial; compute units are parallel.
        let mut dma_free_at = accel.setup_s;
        let mut unit_free_at = vec![accel.setup_s; accel.units];
        let mut next_tile_to_fetch = 0usize;
        let mut completed = 0usize;
        let mut finish_time: f64 = accel.setup_s;

        // Prime the pipeline: fetch the first tile (or all tiles when not
        // double buffered, still serially through the DMA engine).
        let inflight_limit = if accel.double_buffer {
            accel.units + 1
        } else {
            1
        };
        let mut inflight = 0usize;
        while next_tile_to_fetch < tiles && inflight < inflight_limit {
            dma_free_at += dma_per_tile;
            q.schedule_at(
                crate::event::SimTime::from_secs(dma_free_at),
                TileEvent::DmaDone(next_tile_to_fetch),
            );
            next_tile_to_fetch += 1;
            inflight += 1;
        }

        while let Some((t, ev)) = q.pop() {
            events += 1;
            let now = t.as_secs();
            match ev {
                TileEvent::DmaDone(tile) => {
                    // Assign to the earliest-free unit.
                    let (u, &free_at) = unit_free_at
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1.total_cmp(b.1))
                        .expect("units exist");
                    let start = now.max(free_at);
                    let done = start + accel.mvm_latency_s;
                    unit_free_at[u] = done;
                    q.schedule_at(crate::event::SimTime::from_secs(done), {
                        TileEvent::ComputeDone(tile)
                    });
                }
                TileEvent::ComputeDone(_) => {
                    completed += 1;
                    finish_time = finish_time.max(now);
                    if next_tile_to_fetch < tiles {
                        let start = dma_free_at.max(now);
                        dma_free_at = start + dma_per_tile;
                        q.schedule_at(
                            crate::event::SimTime::from_secs(dma_free_at),
                            TileEvent::DmaDone(next_tile_to_fetch),
                        );
                        next_tile_to_fetch += 1;
                    }
                }
            }
        }
        debug_assert_eq!(completed, tiles);
        (finish_time, events)
    }

    /// Runs a workload to completion.
    pub fn run(&self, workload: &Workload) -> SimReport {
        let mut total = 0.0;
        let mut energy = 0.0;
        let mut events = 0usize;
        let mut kernels = Vec::with_capacity(workload.kernels.len());
        for k in &workload.kernels {
            let (t, on_accel) = match (&self.config.accel, k.offloadable) {
                (Some(a), true) => {
                    let (t, ev) = self.accel_kernel_time(k, a);
                    events += ev;
                    let ops_per_tile = (2 * a.rows * a.cols) as u64;
                    let tiles = k.compute_ops.div_ceil(ops_per_tile).max(1) as f64;
                    energy += tiles * a.mvm_energy_j
                        + k.activation_bytes as f64 * self.config.dram.energy_per_byte;
                    (t, true)
                }
                _ => {
                    let t = self.cpu_kernel_time(k);
                    events += 1;
                    energy += t * self.config.core.power_w
                        + k.cpu_bytes() as f64
                            * (1.0 - self.config.cache.l1_hit)
                            * (1.0 - self.config.cache.l2_hit)
                            * self.config.dram.energy_per_byte;
                    (t, false)
                }
            };
            total += t;
            kernels.push(KernelRecord {
                name: k.name.clone(),
                time_s: t,
                on_accel,
            });
        }
        SimReport {
            total_time_s: total,
            energy_j: energy,
            kernels,
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{cnn_trace, lstm_trace};

    #[test]
    fn accelerated_system_is_faster_on_cnn() {
        let w = cnn_trace(8);
        let cpu = System::new(&SystemConfig::cpu_only()).run(&w);
        let acc = System::new(&SystemConfig::with_crossbar()).run(&w);
        let speedup = cpu.total_time_s / acc.total_time_s;
        assert!(speedup > 5.0, "speedup {speedup}");
    }

    #[test]
    fn energy_also_improves_with_offload() {
        let w = cnn_trace(8);
        let cpu = System::new(&SystemConfig::cpu_only()).run(&w);
        let acc = System::new(&SystemConfig::with_crossbar()).run(&w);
        assert!(acc.energy_j < cpu.energy_j);
    }

    #[test]
    fn double_buffering_helps() {
        let w = cnn_trace(6);
        let mut cfg = SystemConfig::with_crossbar();
        let db = System::new(&cfg).run(&w);
        cfg.accel.as_mut().expect("accel").double_buffer = false;
        let nodb = System::new(&cfg).run(&w);
        assert!(db.total_time_s < nodb.total_time_s);
    }

    #[test]
    fn more_units_help_compute_bound_kernels() {
        let w = cnn_trace(6);
        let mut cfg = SystemConfig::with_crossbar();
        cfg.accel.as_mut().expect("accel").units = 1;
        let one = System::new(&cfg).run(&w);
        cfg.accel.as_mut().expect("accel").units = 8;
        let eight = System::new(&cfg).run(&w);
        assert!(eight.total_time_s < one.total_time_s);
    }

    #[test]
    fn non_offloadable_kernels_stay_on_cpu() {
        let w = lstm_trace(4, 256);
        let rep = System::new(&SystemConfig::with_crossbar()).run(&w);
        let cpu_kernels: Vec<&KernelRecord> = rep.kernels.iter().filter(|k| !k.on_accel).collect();
        assert!(!cpu_kernels.is_empty());
        assert!(cpu_kernels.iter().all(|k| k.name.contains("elementwise")));
    }

    #[test]
    fn event_counts_are_plausible() {
        let w = cnn_trace(4);
        let rep = System::new(&SystemConfig::with_crossbar()).run(&w);
        // Tile-level events: 2 per tile, many tiles for big convs.
        assert!(rep.events > 1000, "{} events", rep.events);
    }
}
