//! Property-based tests for the system simulator.

use proptest::prelude::*;
use xlda_syssim::event::{EventQueue, SimTime};
use xlda_syssim::system::{System, SystemConfig};
use xlda_syssim::workload::{KernelOp, Workload};

fn arb_kernel() -> impl Strategy<Value = KernelOp> {
    (
        1u64..10_000_000_000,
        0u64..100_000_000,
        1u64..100_000_000,
        any::<bool>(),
    )
        .prop_map(|(ops, wb, ab, off)| KernelOp {
            name: "k".into(),
            compute_ops: ops,
            weight_bytes: wb,
            activation_bytes: ab,
            offloadable: off,
        })
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    prop::collection::vec(arb_kernel(), 1..12).prop_map(|kernels| Workload {
        name: "prop".into(),
        kernels,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn events_always_pop_in_nondecreasing_time(times in prop::collection::vec(0u64..1_000_000, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime(t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn queue_drains_exactly_what_was_scheduled(times in prop::collection::vec(0u64..1_000, 0..50)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule_at(SimTime(t), ());
        }
        prop_assert_eq!(q.len(), times.len());
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
        prop_assert!(q.is_empty());
    }

    #[test]
    fn offloadable_fraction_is_a_fraction(w in arb_workload()) {
        let f = w.offloadable_fraction();
        prop_assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn simulation_times_positive_and_finite(w in arb_workload()) {
        for cfg in [SystemConfig::cpu_only(), SystemConfig::with_crossbar()] {
            let rep = System::new(&cfg).run(&w);
            prop_assert!(rep.total_time_s > 0.0 && rep.total_time_s.is_finite());
            prop_assert!(rep.energy_j > 0.0 && rep.energy_j.is_finite());
            prop_assert_eq!(rep.kernels.len(), w.kernels.len());
            // Per-kernel times sum to the total (sequential dependence).
            let sum: f64 = rep.kernels.iter().map(|k| k.time_s).sum();
            prop_assert!((sum - rep.total_time_s).abs() < 1e-9 * (1.0 + rep.total_time_s));
        }
    }

    #[test]
    fn accelerator_never_runs_non_offloadable_kernels(w in arb_workload()) {
        let rep = System::new(&SystemConfig::with_crossbar()).run(&w);
        for (k, r) in w.kernels.iter().zip(&rep.kernels) {
            if !k.offloadable {
                prop_assert!(!r.on_accel);
            }
        }
    }

    #[test]
    fn cpu_only_system_never_uses_accelerator(w in arb_workload()) {
        let rep = System::new(&SystemConfig::cpu_only()).run(&w);
        prop_assert!(rep.kernels.iter().all(|k| !k.on_accel));
    }

    #[test]
    fn simulation_is_deterministic(w in arb_workload()) {
        let sys = System::new(&SystemConfig::with_crossbar());
        let a = sys.run(&w);
        let b = sys.run(&w);
        prop_assert_eq!(a, b);
    }
}
