//! The Sec. III case study end-to-end: FeFET-based hyperdimensional
//! computing, from encoding through variation-aware CAM search.
//!
//! ```text
//! cargo run --release --example hdc_fefet_study
//! ```

use xlda::datagen::ClassificationSpec;
use xlda::device::fefet::Fefet;
use xlda::hdc::cam::{Aggregation, CamAm, CamSearchConfig};
use xlda::hdc::encode::{Encoder, EncoderConfig};
use xlda::hdc::model::{Distance, HdcModel};
use xlda::num::Rng64;

fn main() {
    // A hard ISOLET-shaped synthetic dataset (26 classes, 617 features).
    let mut spec = ClassificationSpec::isolet_like();
    spec.noise = 4.0;
    spec.train_per_class = 30;
    spec.test_per_class = 10;
    let data = spec.generate();

    let encoder = Encoder::new(&EncoderConfig {
        dim_in: data.dim(),
        hv_dim: 2048,
        ..EncoderConfig::default()
    });

    println!(
        "HDC on {} ({} classes, {} features)",
        data.name,
        data.classes,
        data.dim()
    );

    // Software model at several element precisions (the Fig. 3C axis).
    println!("\nsoftware accuracy vs element precision:");
    for bits in [1u8, 2, 3, 32] {
        let model = HdcModel::train(&encoder, &data, bits, 2);
        let acc = model.accuracy_with(&encoder, &data, Distance::Cosine);
        println!("  {:>4} bit: {:.1}%", bits, acc * 100.0);
    }

    // Hardware mapping: 3-bit FeFET CAM with the measured 94 mV sigma,
    // partitioned into 64-cell subarrays.
    let model = HdcModel::train(&encoder, &data, 3, 2);
    println!("\nFeFET CAM search (3-bit cells, 64-cell subarrays):");
    for (label, sigma, agg) in [
        (
            "ideal cells, distance-sum",
            0.0,
            Aggregation::DistanceSum { resolution: None },
        ),
        (
            "94 mV sigma, distance-sum",
            0.094,
            Aggregation::DistanceSum { resolution: None },
        ),
        (
            "94 mV sigma, subarray vote",
            0.094,
            Aggregation::SubarrayVote,
        ),
    ] {
        let config = CamSearchConfig {
            bits_per_cell: 3,
            subarray_cols: 64,
            device: Fefet::silicon().with_sigma(sigma),
            aggregation: agg,
            verify_tolerance: None,
        };
        let cam = CamAm::program(&model, &config, &mut Rng64::new(7));
        println!("  {label}: {:.1}%", cam.accuracy(&encoder, &data) * 100.0);
    }

    // The quadratic cell law behind the analog distance computation.
    let dev = Fefet::silicon();
    println!("\nCAM cell conductance vs level distance (Fig. 3D law):");
    for dl in 0..4usize {
        let g = dev.cam_level_conductance(dl, 0, 3);
        println!("  dLevel {dl}: {:.3} µS", g * 1e6);
    }
}
