//! The Sec. IV case study end-to-end: few-shot learning with a
//! memory-augmented neural network whose CNN, hashing, and associative
//! search all map onto RRAM crossbars.
//!
//! ```text
//! cargo run --release --example mann_rram_study
//! ```

use xlda::datagen::fewshot::FewShotSpec;
use xlda::mann::controller::{train_controller, TrainConfig};
use xlda::mann::episode::{evaluate, EpisodeConfig, MannVariant};

fn main() {
    // Omniglot-like synthetic stroke data: background split trains the
    // CNN controller; episodes sample unseen classes.
    let data = FewShotSpec {
        background_classes: 12,
        eval_classes: 16,
        samples_per_class: 12,
        ..FewShotSpec::default()
    }
    .generate();

    let (net, background_acc) = train_controller(
        &data,
        &TrainConfig {
            epochs: 4,
            ..TrainConfig::default()
        },
    );
    println!(
        "controller: {} weights, background accuracy {:.1}%",
        net.weight_count(),
        background_acc * 100.0
    );

    let config = EpisodeConfig {
        episodes: 25,
        ..EpisodeConfig::default() // 5-way 1-shot
    };
    println!("\n5-way 1-shot accuracy (25 episodes):");
    let variants: [(&str, MannVariant); 4] = [
        ("software cosine (skyline)", MannVariant::SoftwareCosine),
        (
            "software LSH, 128 bits",
            MannVariant::SoftwareLsh { bits: 128 },
        ),
        (
            "RRAM LSH, 128 bits (drifted)",
            MannVariant::RramLsh {
                bits: 128,
                relax_decades: 6.0,
            },
        ),
        (
            "RRAM ternary LSH, 128 bits",
            MannVariant::RramTlsh {
                bits: 128,
                relax_decades: 6.0,
                threshold_frac: 0.2,
            },
        ),
    ];
    for (label, variant) in variants {
        let acc = evaluate(&net, &data, variant, &config);
        println!("  {label:<30} {:.1}%", acc * 100.0);
    }
}
