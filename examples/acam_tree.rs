//! Analog CAM as a decision-tree engine (paper Sec. II-B1 ACAM concept).
//!
//! Compiles an axis-aligned decision tree into ACAM rows (one word per
//! leaf region), then measures how bound-programming variation and input
//! noise erode inference accuracy — the ACAM's characteristic trade
//! against multi-bit digital CAMs.
//!
//! ```text
//! cargo run --example acam_tree
//! ```

use xlda::evacam::acam::{AcamArray, AcamConfig, TreeNode};
use xlda::num::Rng64;

/// Builds a depth-`depth` random tree over `features` features.
fn random_tree(depth: usize, features: usize, next_class: &mut usize, rng: &mut Rng64) -> TreeNode {
    if depth == 0 {
        let class = *next_class;
        *next_class += 1;
        return TreeNode::Leaf { class };
    }
    TreeNode::Split {
        feature: rng.index(features),
        threshold: 0.2 + 0.6 * rng.uniform(),
        left: Box::new(random_tree(depth - 1, features, next_class, rng)),
        right: Box::new(random_tree(depth - 1, features, next_class, rng)),
    }
}

fn main() {
    let mut rng = Rng64::new(0xacab);
    let features = 6;
    let mut classes = 0usize;
    let tree = random_tree(4, features, &mut classes, &mut rng);
    let (rows, labels) = tree.to_acam_rows(features);
    println!(
        "compiled a depth-4 tree over {features} features into {} ACAM words ({classes} leaves)",
        rows.len()
    );

    println!("\naccuracy vs analog noise (10k random queries per point):");
    println!("{:>12} {:>10}", "sigma", "accuracy");
    for sigma in [0.0, 0.005, 0.01, 0.02, 0.05, 0.1] {
        let config = AcamConfig {
            bound_sigma: sigma,
            input_noise: sigma,
        };
        let mut prog_rng = Rng64::new(1);
        let acam = AcamArray::program(&rows, &labels, config, &mut prog_rng);
        let mut qrng = Rng64::new(2);
        let trials = 10_000;
        let mut correct = 0usize;
        for _ in 0..trials {
            let q: Vec<f64> = (0..features).map(|_| qrng.uniform()).collect();
            if acam.classify(&q, &mut prog_rng) == Some(tree.evaluate(&q)) {
                correct += 1;
            }
        }
        println!(
            "{:>11.3} {:>9.1}%",
            sigma,
            100.0 * correct as f64 / trials as f64
        );
    }
    println!(
        "\n(each word stores per-feature intervals; a query matches the single\n\
         leaf region containing it — noise only hurts near region boundaries)"
    );
}
