//! Quickstart: one pass through every layer of the stack.
//!
//! Models a device, a CAM cell, an array, an algorithm mapping, and a
//! full-system question in ~60 lines. Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use xlda::circuit::tech::TechNode;
use xlda::core::evaluate::{HdcScenario, Scenario};
use xlda::core::triage::{rank, Objective};
use xlda::device::fefet::Fefet;
use xlda::device::MemoryDevice;
use xlda::evacam::{CamArray, CamConfig, DataKind, MatchKind};
use xlda::syssim::study::offload_speedup;
use xlda::syssim::system::SystemConfig;
use xlda::syssim::workload::cnn_trace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Device layer: a multi-level FeFET and its programming quality.
    let fefet = Fefet::silicon();
    let mlc = fefet.mlc(3);
    println!("== device layer ==");
    println!(
        "{}: {} V_th levels over a {:.2} V window, sigma {:.0} mV,",
        fefet.name(),
        mlc.level_count(),
        fefet.window(),
        mlc.sigma() * 1e3
    );
    println!(
        "worst-case level misread probability: {:.1}%",
        mlc.max_error_rate() * 100.0
    );

    // 2. Array layer: what does a CAM built from it cost?
    let cam = CamArray::new(CamConfig {
        words: 1024,
        bits_per_word: 128,
        data: DataKind::MultiBit(3),
        match_kind: MatchKind::Best { max_distance: 8 },
        tech: TechNode::n40(),
        ..CamConfig::default()
    })?;
    let report = cam.report();
    println!("\n== array layer (Eva-CAM model) ==");
    println!(
        "1024x128b MCAM @40nm: {:.0} µm², search {:.2} ns / {:.1} pJ, {} segment(s)",
        report.area_um2,
        report.search_latency_s * 1e9,
        report.search_energy_j * 1e12,
        report.segments
    );

    // 3. Application layer: triage platform mappings of an HDC workload.
    let candidates = HdcScenario::default().candidates()?;
    let ranking = rank(&candidates, &Objective::latency_first(Some(0.9)));
    println!("\n== cross-layer triage (Fig. 3H flow) ==");
    for (i, r) in ranking.iter().take(3).enumerate() {
        println!("  {}. {}", i + 1, r.name);
    }

    // 4. System layer: is a crossbar accelerator worth it for a CNN?
    let row = offload_speedup(&cnn_trace(10), &SystemConfig::with_crossbar());
    println!("\n== system layer (Sec. V flow) ==");
    println!(
        "CNN end-to-end speedup from analog crossbars: {:.1}x (offloadable {:.1}%)",
        row.speedup,
        row.offload_fraction * 100.0
    );
    Ok(())
}
