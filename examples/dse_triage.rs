//! The Sec. VII design-space-exploration flow: top-down workload
//! profiling, cross-layer candidate evaluation, Pareto analysis, and
//! bottom-up device-lever prioritization (the Fig. 6 loop).
//!
//! ```text
//! cargo run --example dse_triage
//! ```

use xlda::circuit::matchline::MatchlineConfig;
use xlda::circuit::tech::TechNode;
use xlda::core::evaluate::{HdcScenario, Scenario};
use xlda::core::pareto::pareto_front;
use xlda::core::profile::{device_priorities, recommend, WorkloadProfile};
use xlda::core::report::{ranking_to_markdown, to_markdown};
use xlda::core::sensitivity::prioritized_levers;
use xlda::core::triage::{rank, Objective};
use xlda::syssim::workload::{cnn_trace, hdc_trace, lstm_trace};

fn main() {
    // --- Top-down: profile workloads, pick architecture lanes.
    println!("top-down triage:");
    for w in [cnn_trace(8), lstm_trace(16, 512), hdc_trace(617, 4096, 500)] {
        let profile = WorkloadProfile::from_workload(&w, 0.001);
        println!(
            "  {:<18} MVM {:>4.0}% / search {:>4.0}% -> {:?}, top metric {:?}",
            w.name,
            profile.mvm_fraction * 100.0,
            profile.search_fraction * 100.0,
            recommend(&profile),
            device_priorities(&profile)[0]
        );
    }

    // --- Cross-layer evaluation: the Fig. 3H candidate set, emitted as
    //     the Markdown report a design review would consume.
    let candidates = HdcScenario::default()
        .candidates()
        .expect("default scenario models");
    println!("\nHDC platform candidates:\n");
    print!("{}", to_markdown(&candidates));

    // Pareto front + weighted triage.
    let front = pareto_front(&candidates);
    println!(
        "\nPareto-optimal: {:?}",
        front
            .iter()
            .map(|&i| &candidates[i].name)
            .collect::<Vec<_>>()
    );
    let ranking = rank(&candidates, &Objective::latency_first(Some(0.9)));
    println!("\nlatency-first triage (iso-accuracy floor 90%):");
    print!("{}", ranking_to_markdown(&ranking));

    // --- Bottom-up: which device lever should materials work target?
    let levers = prioritized_levers(&MatchlineConfig::default(), &TechNode::n40(), 128, 2.0);
    println!("\ndevice levers by application-visible impact (2x perturbation):");
    for (lever, impact) in levers {
        println!("  {:<8} impact {impact:.2}", lever.label());
    }
}
