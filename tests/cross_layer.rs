//! Integration tests spanning crates: the device → circuit → array →
//! algorithm chain must compose, and changes at the bottom of the stack
//! must be visible at the top.

use xlda::datagen::ClassificationSpec;
use xlda::device::fefet::Fefet;
use xlda::device::MemoryDevice;
use xlda::evacam::{CamArray, CamCellDesign, CamConfig, DataKind, MatchKind};
use xlda::hdc::cam::{Aggregation, CamAm, CamSearchConfig};
use xlda::hdc::encode::{Encoder, EncoderConfig};
use xlda::hdc::model::HdcModel;
use xlda::num::Rng64;

fn dataset() -> xlda::datagen::Dataset {
    let mut spec = ClassificationSpec::emg_like();
    spec.train_per_class = 30;
    spec.test_per_class = 12;
    spec.generate()
}

#[test]
fn device_sigma_propagates_to_application_accuracy() {
    // The cross-layer premise: a device-level parameter (V_th programming
    // spread) must shape application-level accuracy through the CAM.
    let data = dataset();
    let encoder = Encoder::new(&EncoderConfig {
        dim_in: data.dim(),
        hv_dim: 512,
        ..EncoderConfig::default()
    });
    let model = HdcModel::train(&encoder, &data, 3, 1);
    let acc_at = |sigma: f64| {
        let config = CamSearchConfig {
            bits_per_cell: 3,
            subarray_cols: 64,
            device: Fefet::silicon().with_sigma(sigma),
            aggregation: Aggregation::DistanceSum { resolution: None },
            verify_tolerance: None,
        };
        CamAm::program(&model, &config, &mut Rng64::new(1)).accuracy(&encoder, &data)
    };
    let ideal = acc_at(0.0);
    let broken = acc_at(0.8); // absurd spread: most levels misread
    assert!(ideal > 0.8, "ideal accuracy {ideal}");
    assert!(broken < ideal - 0.2, "ideal {ideal} broken {broken}");
}

#[test]
fn device_choice_propagates_to_array_foms() {
    // Same architecture, different technology: the array model must
    // reflect device trade-offs (SRAM fast writes / big cells; FeFET
    // compact / slower writes).
    let mk = |design: CamCellDesign, data: DataKind| {
        CamArray::new(CamConfig {
            words: 512,
            bits_per_word: 128,
            design,
            data,
            match_kind: MatchKind::Exact,
            ..CamConfig::default()
        })
        .expect("models")
        .report()
    };
    let fefet = mk(CamCellDesign::Fefet2T, DataKind::Ternary);
    let sram = mk(CamCellDesign::Sram16T, DataKind::Binary);
    assert!(fefet.area_um2 < sram.area_um2 / 3.0);
    assert!(fefet.write_latency_s > sram.write_latency_s);
    assert!(fefet.leakage_w < sram.leakage_w);
}

#[test]
fn multibit_capability_flows_from_device_to_architecture() {
    // The FeFET's multi-level capability is what makes the MCAM design
    // point exist at all; MRAM (1 bit) must refuse it.
    let fefet_mcam = CamArray::new(CamConfig {
        design: CamCellDesign::Fefet2T,
        data: DataKind::MultiBit(3),
        ..CamConfig::default()
    });
    assert!(fefet_mcam.is_ok());
    let mram_mcam = CamArray::new(CamConfig {
        design: CamCellDesign::Mram4T2R,
        data: DataKind::MultiBit(3),
        ..CamConfig::default()
    });
    assert!(mram_mcam.is_err());
    // And the device models agree with the architecture-level rule.
    assert!(Fefet::silicon().max_bits_per_cell() >= 3);
}

#[test]
fn hdc_pipeline_is_deterministic_end_to_end() {
    let data = dataset();
    let run = || {
        let encoder = Encoder::new(&EncoderConfig {
            dim_in: data.dim(),
            hv_dim: 256,
            ..EncoderConfig::default()
        });
        let model = HdcModel::train(&encoder, &data, 3, 1);
        let config = CamSearchConfig {
            bits_per_cell: 3,
            subarray_cols: 32,
            device: Fefet::silicon(),
            aggregation: Aggregation::SubarrayVote,
            verify_tolerance: Some(0.05),
        };
        CamAm::program(&model, &config, &mut Rng64::new(9)).accuracy(&encoder, &data)
    };
    assert_eq!(run(), run());
}

#[test]
fn facade_reexports_compose() {
    // The `xlda` facade must expose every layer coherently.
    let tech = xlda::circuit::tech::TechNode::n40();
    let sa = xlda::circuit::senseamp::SenseAmp::voltage_latch(&tech);
    let ml = xlda::circuit::matchline::Matchline::new(
        xlda::circuit::matchline::MatchlineConfig::default(),
        &tech,
        64,
    );
    assert!(ml.mismatch_limit(&sa) >= 1);
    let mut rng = xlda::num::Rng64::new(3);
    assert!(xlda::num::stats::mean(&rng.normal_vec(100, 5.0, 1.0)) > 4.0);
}
