//! Integration tests pinning the paper's headline claims at the
//! workspace level (the per-figure detail lives in `xlda-bench`).

use xlda::core::evaluate::{HdcScenario, MannScenario, Scenario};
use xlda::core::pareto::pareto_front;
use xlda::core::triage::{rank, Objective};
use xlda::evacam::validate::validate_all;
use xlda::syssim::study::offload_speedup;
use xlda::syssim::system::SystemConfig;
use xlda::syssim::workload::{cnn_trace, lstm_trace};

#[test]
fn fig5_validation_within_twenty_percent() {
    // Sec. VI / Fig. 5: the analytical CAM model lands within ~20 % of
    // published silicon on every reported figure of merit.
    let rows = validate_all().expect("reference chips model");
    assert_eq!(rows.len(), 3);
    for r in &rows {
        assert!(
            r.worst_error() <= 0.20,
            "{}: {:.1}% error",
            r.label,
            r.worst_error() * 100.0
        );
    }
}

#[test]
fn fig3h_headline_three_bit_fefet_cam_wins() {
    // Sec. III / Fig. 3H: at iso-accuracy, the 3-bit FeFET CAM is the
    // superior design point; 1-bit is fast but inaccurate.
    let candidates = HdcScenario::default().candidates().unwrap();
    let ranking = rank(&candidates, &Objective::latency_first(Some(0.9)));
    assert_eq!(ranking[0].name, "3b FeFET CAM");
    let sram = ranking
        .iter()
        .find(|r| r.name.contains("SRAM"))
        .expect("SRAM candidate");
    assert!(!sram.meets_floor, "1-bit SRAM must miss iso-accuracy");
    // The CAM survives multi-objective comparison too.
    let front = pareto_front(&candidates);
    assert!(front.iter().any(|&i| candidates[i].name == "3b FeFET CAM"));
}

#[test]
fn sec4_headline_rram_mann_latency_advantage() {
    // Sec. IV / Fig. 4E: the all-RRAM MANN pipeline yields substantial
    // latency and energy improvements at near-iso-accuracy.
    let cands = MannScenario::default().candidates().unwrap();
    let gpu = &cands[0].fom;
    let rram = &cands[1].fom;
    assert!(rram.latency_s * 10.0 < gpu.latency_s);
    assert!(rram.energy_j < gpu.energy_j);
}

#[test]
fn sec5_headline_cnn_speedup_up_to_twenty_x() {
    // Sec. V: system simulation shows analog crossbars speed up CNN
    // benchmarks by up to ~20x, and gains track the offloadable share.
    let cnn = offload_speedup(&cnn_trace(10), &SystemConfig::with_crossbar());
    assert!(
        cnn.speedup > 10.0 && cnn.speedup < 35.0,
        "CNN speedup {:.1}",
        cnn.speedup
    );
    let lstm = offload_speedup(&lstm_trace(16, 512), &SystemConfig::with_crossbar());
    assert!(lstm.speedup < cnn.speedup);
    assert!(lstm.speedup > 1.0);
}

#[test]
fn triage_objectives_change_the_winner_story() {
    // The framework exists to ask "under WHICH objective does a design
    // point win": batched GPU inference must beat batch-1 under any
    // objective, while dedicated hardware wins latency-first.
    let candidates = HdcScenario::default().candidates().unwrap();
    let lat = rank(&candidates, &Objective::latency_first(None));
    let pos = |ranking: &[xlda::core::triage::Ranked], name: &str| {
        ranking
            .iter()
            .position(|r| r.name.contains(name))
            .expect("candidate present")
    };
    assert!(pos(&lat, "batch 1000") < pos(&lat, "batch 1)"));
    assert!(pos(&lat, "FeFET CAM") < pos(&lat, "GPU HDC"));
}
