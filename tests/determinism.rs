//! Workspace-level determinism: every Monte-Carlo pipeline must be a
//! pure function of its seeds, end to end. This is what makes the
//! triage methodology auditable — a reported number can be regenerated
//! bit-for-bit.

use xlda::core::evaluate::{HdcScenario, Scenario};
use xlda::crossbar::stochastic::StochasticProjection;
use xlda::crossbar::{Crossbar, CrossbarConfig, Fidelity};
use xlda::datagen::fewshot::FewShotSpec;
use xlda::datagen::ClassificationSpec;
use xlda::device::rram::Rram;
use xlda::evacam::acam::{AcamArray, AcamConfig, TreeNode};
use xlda::evacam::variation::{sensing_error_probability, CellVariation};
use xlda::num::{Matrix, Rng64};
use xlda::syssim::alp::run_streams;
use xlda::syssim::system::SystemConfig;
use xlda::syssim::workload::{cnn_trace, lstm_trace};

#[test]
fn datasets_are_pure_functions_of_seed() {
    let a = ClassificationSpec::isolet_like().generate();
    let b = ClassificationSpec::isolet_like().generate();
    assert_eq!(a.train, b.train);
    let fa = FewShotSpec::default().generate();
    let fb = FewShotSpec::default().generate();
    assert_eq!(fa.eval[0][0], fb.eval[0][0]);
}

#[test]
fn crossbar_programming_and_mvm_deterministic() {
    let cfg = CrossbarConfig {
        rows: 16,
        cols: 16,
        ..CrossbarConfig::default()
    };
    let run = || {
        let mut rng = Rng64::new(42);
        let w = Matrix::random_normal(16, 16, 0.0, 0.5, &mut rng);
        let xbar = Crossbar::program(&cfg, &w, &mut rng);
        let x = rng.normal_vec(16, 0.0, 0.3);
        xbar.mvm(&x, Fidelity::Full)
    };
    assert_eq!(run(), run());
}

#[test]
fn stochastic_hashing_deterministic() {
    let dev = Rram::taox();
    let run = || {
        let mut rng = Rng64::new(7);
        let mut proj = StochasticProjection::new(32, 64, &dev, &mut rng);
        proj.relax(4.0, &mut rng);
        let x: Vec<f64> = (0..32).map(|_| rng.uniform()).collect();
        (proj.hash(&x), proj.ternary_hash(&x, 1e-7))
    };
    assert_eq!(run(), run());
}

#[test]
fn monte_carlo_variation_analysis_deterministic() {
    let cfg = xlda::circuit::matchline::MatchlineConfig::default();
    let var = CellVariation::default();
    let run = || {
        let mut rng = Rng64::new(3);
        sensing_error_probability(&cfg, &var, 64, 2, 5_000, &mut rng)
    };
    assert_eq!(run(), run());
}

#[test]
fn acam_inference_deterministic() {
    let tree = TreeNode::Split {
        feature: 0,
        threshold: 0.5,
        left: Box::new(TreeNode::Leaf { class: 0 }),
        right: Box::new(TreeNode::Leaf { class: 1 }),
    };
    let (rows, labels) = tree.to_acam_rows(2);
    let run = || {
        let mut rng = Rng64::new(11);
        let acam = AcamArray::program(&rows, &labels, AcamConfig::default(), &mut rng);
        let mut out = Vec::new();
        for i in 0..50 {
            let q = [i as f64 / 50.0, 0.5];
            out.push(acam.classify(&q, &mut rng));
        }
        out
    };
    assert_eq!(run(), run());
}

#[test]
fn system_and_alp_simulation_deterministic() {
    let streams = [cnn_trace(4), lstm_trace(8, 256)];
    let a = run_streams(&SystemConfig::with_crossbar(), &streams);
    let b = run_streams(&SystemConfig::with_crossbar(), &streams);
    assert_eq!(a, b);
}

#[test]
fn full_candidate_evaluation_deterministic() {
    let s = HdcScenario::default();
    assert_eq!(s.candidates().unwrap(), s.candidates().unwrap());
}

#[test]
fn parallel_accuracy_matches_itself_across_runs() {
    // The crossbeam-parallel CAM accuracy path must not depend on thread
    // scheduling.
    use xlda::device::fefet::Fefet;
    use xlda::hdc::cam::{Aggregation, CamAm, CamSearchConfig};
    use xlda::hdc::encode::{Encoder, EncoderConfig};
    use xlda::hdc::model::HdcModel;
    let mut spec = ClassificationSpec::emg_like();
    spec.train_per_class = 10;
    spec.test_per_class = 6;
    let data = spec.generate();
    let encoder = Encoder::new(&EncoderConfig {
        dim_in: data.dim(),
        hv_dim: 256,
        ..EncoderConfig::default()
    });
    let model = HdcModel::train(&encoder, &data, 3, 1);
    let config = CamSearchConfig {
        bits_per_cell: 3,
        subarray_cols: 32,
        device: Fefet::silicon(),
        aggregation: Aggregation::SubarrayVote,
        verify_tolerance: None,
    };
    let acc = |seed: u64| {
        CamAm::program(&model, &config, &mut Rng64::new(seed)).accuracy(&encoder, &data)
    };
    assert_eq!(acc(5), acc(5));
    // And the per-episode parallel MANN path too.
    use xlda::mann::controller::{train_controller, TrainConfig};
    use xlda::mann::episode::{evaluate, EpisodeConfig, MannVariant};
    let imgs = FewShotSpec {
        background_classes: 4,
        eval_classes: 6,
        samples_per_class: 6,
        ..FewShotSpec::default()
    }
    .generate();
    let (net, _) = train_controller(
        &imgs,
        &TrainConfig {
            epochs: 1,
            ..TrainConfig::default()
        },
    );
    let cfg = EpisodeConfig {
        episodes: 6,
        ..EpisodeConfig::default()
    };
    let e1 = evaluate(&net, &imgs, MannVariant::SoftwareLsh { bits: 32 }, &cfg);
    let e2 = evaluate(&net, &imgs, MannVariant::SoftwareLsh { bits: 32 }, &cfg);
    assert_eq!(e1, e2);
}
