//! A design-space sweep must survive infeasible points.
//!
//! The grids a DSE loop enumerates routinely contain configurations no
//! silicon can realize — words too long for any sense margin, degenerate
//! one-word arrays, unsupported design/data pairings. Before the
//! fallible-evaluation refactor the first such point panicked the whole
//! sweep; these tests pin the new contract: the sweep completes, every
//! feasible point yields a finite report, and every infeasible point
//! yields a typed, inspectable error.

use xlda::core::error::XldaError;
use xlda::core::evaluate::{HdcScenario, Scenario};
use xlda::core::sweep::{par_try_map, PointFailure};
use xlda::core::triage::{rank, Objective};
use xlda::evacam::{CamArray, CamCellDesign, CamConfig, CamError, CamReport, DataKind, MatchKind};

/// A CAM grid mixing feasible points with known-infeasible ones: distance
/// resolutions no matchline can sense, one-word degenerates, and
/// design/data pairings the support matrix rejects.
fn cam_grid() -> Vec<CamConfig> {
    let mut grid = Vec::new();
    for words in [1usize, 64, 1024] {
        for bits_per_word in [64usize, 128] {
            for design in [
                CamCellDesign::Fefet2T,
                CamCellDesign::Rram2T2R,
                CamCellDesign::Sram16T,
            ] {
                for match_kind in [
                    MatchKind::Exact,
                    MatchKind::Best { max_distance: 4 },
                    // Unachievable: no sense amp splits 48-vs-49 mismatches.
                    MatchKind::Best { max_distance: 48 },
                ] {
                    for data in [DataKind::Binary, DataKind::MultiBit(3)] {
                        grid.push(CamConfig {
                            words,
                            bits_per_word,
                            design,
                            data,
                            match_kind,
                            row_banks: 1,
                            ..CamConfig::default()
                        });
                    }
                }
            }
        }
    }
    grid
}

#[test]
fn cam_grid_sweep_completes_and_reports_per_point_errors() {
    let grid = cam_grid();
    let results: Vec<Result<CamReport, PointFailure<CamError>>> = par_try_map(&grid, |cfg| {
        CamArray::new(cfg.clone()).map(|cam| cam.report())
    });

    assert_eq!(results.len(), grid.len());

    let ok = results.iter().filter(|r| r.is_ok()).count();
    let sense_margin = results
        .iter()
        .filter(|r| {
            matches!(
                r,
                Err(PointFailure::Error(
                    CamError::SenseMarginUnachievable { .. }
                ))
            )
        })
        .count();
    let unsupported = results
        .iter()
        .filter(|r| {
            matches!(
                r,
                Err(PointFailure::Error(
                    CamError::UnsupportedData { .. } | CamError::UnsupportedMatch { .. }
                ))
            )
        })
        .count();

    // The grid was built to exercise every outcome class.
    assert!(ok > 0, "no feasible points modeled");
    assert!(sense_margin > 0, "expected sense-margin infeasibility");
    assert!(unsupported > 0, "expected support-matrix rejections");
    assert_eq!(
        ok + sense_margin + unsupported,
        grid.len(),
        "no point may vanish or panic: {results:?}"
    );

    // Feasible reports stay finite — including the 1-word degenerates.
    for (cfg, r) in grid.iter().zip(&results) {
        if let Ok(rep) = r {
            assert!(
                rep.search_latency_s.is_finite() && rep.search_latency_s > 0.0,
                "{cfg:?}"
            );
            assert!(
                rep.search_energy_j.is_finite() && rep.search_energy_j > 0.0,
                "{cfg:?}"
            );
            assert!(rep.area_um2.is_finite() && rep.area_um2 > 0.0, "{cfg:?}");
        }
    }
}

#[test]
fn infeasible_points_are_classified_not_escalated() {
    // The DSE layer's triage of failures: sense-margin and support-matrix
    // rejections are infeasibility (ordinary sweep results), while empty
    // arrays mark a malformed generator.
    let infeasible: XldaError = CamError::SenseMarginUnachievable {
        required_resolution: 48,
    }
    .into();
    assert!(infeasible.is_infeasible());
    let malformed: XldaError = CamError::EmptyArray.into();
    assert!(!malformed.is_infeasible());
}

#[test]
fn scenario_sweep_with_poisoned_point_still_ranks_the_rest() {
    // An HDC scenario grid where one point carries a NaN accuracy (a
    // poisoned calibration input): the sweep completes, the poisoned
    // point reports InvalidFom, and the surviving candidates still rank.
    let mut scenarios: Vec<HdcScenario> = vec![
        HdcScenario::default(),
        HdcScenario {
            hv_dim_3b: 1024,
            ..HdcScenario::default()
        },
        HdcScenario {
            acc_sw: f64::NAN,
            ..HdcScenario::default()
        },
    ];
    // And one degenerate single-class scenario (1-word CAMs throughout).
    scenarios.push(HdcScenario {
        classes: 1,
        ..HdcScenario::default()
    });

    let results = par_try_map(&scenarios, |s| s.candidates());
    assert_eq!(results.len(), scenarios.len());

    let mut ranked_any = false;
    let mut invalid = 0usize;
    for r in &results {
        match r {
            Ok(cands) => {
                let ranking = rank(cands, &Objective::latency_first(Some(0.9)));
                assert_eq!(ranking.len(), cands.len());
                ranked_any = true;
            }
            Err(PointFailure::Error(XldaError::InvalidFom { name, fom })) => {
                assert!(fom.accuracy.is_nan(), "{name}: {fom:?}");
                invalid += 1;
            }
            Err(other) => panic!("unexpected failure class: {other}"),
        }
    }
    assert!(ranked_any, "healthy scenarios must evaluate and rank");
    assert_eq!(
        invalid, 1,
        "exactly the poisoned scenario fails: {results:?}"
    );
}
